// Protocol face-off: all three self-stabilizing ranking protocols on the
// same adversarial inputs — Table 1 in action, on your choice of backend.
//
// For a few population sizes, each protocol starts from an equally hostile
// configuration and races to a stable ranking. The output shows the paper's
// time hierarchy (Theta(n^2) vs Theta(n) vs sublinear) and the price paid
// in state complexity.
//
// The unified Engine API makes the backend a flag: the enumerable protocols
// (Silent-n-state, Optimal-Silent) race on either engine through the same
// generic run_engine_until_ranked harness; Sublinear-Time-SSR always runs
// on the agent array — its quasi-exponential state space is the textbook
// example of a protocol the count-based backend cannot enumerate.
//
// Build & run:  ./build/protocol_faceoff                  # agent array
//               ./build/protocol_faceoff --backend=batch  # batched engine
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/adversary.h"
#include "analysis/convergence.h"
#include "core/batch_simulation.h"
#include "core/simulation.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "protocols/sublinear.h"

using namespace ppsim;

namespace {

bool use_batch = false;

// One race on the chosen backend: both engines run the identical harness.
template <class P>
double race(P proto, std::vector<typename P::State> init, std::uint64_t seed,
            const RunOptions& opts) {
  if (use_batch) {
    BatchSimulation<P> sim(std::move(proto), init, seed);
    return run_engine_until_ranked(sim, opts).stabilization_ptime;
  }
  Simulation<P> sim(std::move(proto), std::move(init), seed);
  return run_engine_until_ranked(sim, opts).stabilization_ptime;
}

double race_silent_nstate(std::uint32_t n, std::uint64_t seed) {
  RunOptions opts;
  opts.max_interactions = 1ull << 40;
  return race(SilentNStateSSR(n), silent_nstate_random_config(n, seed),
              seed + 1, opts);
}

double race_optimal_silent(std::uint32_t n, std::uint64_t seed) {
  const auto params = OptimalSilentParams::standard(n);
  RunOptions opts;
  opts.max_interactions = 1ull << 40;
  return race(OptimalSilentSSR(params),
              optimal_silent_config(params, OsAdversary::kUniformRandom, seed),
              seed + 1, opts);
}

double race_sublinear(std::uint32_t n, std::uint32_t h, std::uint64_t seed) {
  const auto p = h == 0 ? SublinearParams::log_time(n)
                        : SublinearParams::constant_h(n, h);
  SublinearTimeSSR proto(p);
  RunOptions opts;
  opts.max_interactions = 1ull << 40;
  opts.tail_ptime = 0.75 * p.th + 10;
  // Not enumerable: always the agent array, whatever the flag says.
  const RunResult r = run_until_ranked(
      proto, sublinear_config(p, SlAdversary::kUniformRandom, seed), seed + 1,
      opts);
  return r.stabilization_ptime;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backend=batch") == 0) use_batch = true;
    else if (std::strcmp(argv[i], "--backend=array") == 0) use_batch = false;
  }
  std::printf("self-stabilizing ranking face-off (stabilization parallel "
              "time, one adversarial run each)\n");
  std::printf("backend: %s (Sublinear always runs on the agent array: its "
              "state space is not enumerable)\n\n",
              use_batch ? "count-based batched" : "agent array");
  std::printf("%6s %18s %18s %20s %22s\n", "n", "Silent-n-state",
              "Optimal-Silent", "Sublinear (H=1)", "Sublinear (H=log n)");
  std::printf("%6s %18s %18s %20s %22s\n", "", "n states, silent",
              "O(n) states, silent", "exp states, live", "exp states, live");

  std::uint64_t seed = 1;
  for (std::uint32_t n : {16u, 32u, 64u, 128u}) {
    const double t1 = race_silent_nstate(n, seed += 10);
    const double t2 = race_optimal_silent(n, seed += 10);
    const double t3 = race_sublinear(n, 1, seed += 10);
    // The H = Theta(log n) configuration's history trees get expensive to
    // *simulate* (not to run!) beyond small n; keep the demo snappy.
    const double t4 = n <= 32 ? race_sublinear(n, 0, seed += 10) : -1.0;
    if (t4 >= 0)
      std::printf("%6u %18.1f %18.1f %20.1f %22.1f\n", n, t1, t2, t3, t4);
    else
      std::printf("%6u %18.1f %18.1f %20.1f %22s\n", n, t1, t2, t3,
                  "(skipped: heavy)");
  }

  std::printf(
      "\nreading the race: the n-state baseline quadruples per doubling of "
      "n;\nOptimal-Silent doubles; the Sublinear rows grow far slower, "
      "paying with\nquasi-exponential state (their absolute times carry a "
      "fixed reset-pipeline\noverhead that shrinks in relative terms as n "
      "grows). This is Table 1 of the\npaper, measured.\n");
  return 0;
}
