// Sensor-fleet recovery: the paper's motivating scenario (Section 1,
// "Reliable leader election").
//
// A fleet of mobile sensors runs Sublinear-Time-SSR for coordination: the
// rank-1 sensor acts as the leader that aggregates readings. The fleet
// operates in a harsh environment: every so often a burst of transient
// faults scrambles the memory of every sensor (or a targeted subset).
// Because the protocol is self-stabilizing, no external re-initialization
// is needed — the fleet detects the damage, resets, renames, and re-elects
// on its own, and we log each recovery's latency.
//
// Build & run:  ./build/examples/sensor_fleet_recovery
#include <cstdio>

#include "common/cli.h"
#include "core/simulation.h"
#include "init/sublinear_init.h"
#include "protocols/leader.h"
#include "protocols/sublinear.h"

using namespace ppsim;

namespace {

constexpr std::uint32_t kFleet = 48;

// One burst of transient faults: corrupt `count` sensors chosen at random
// (memory becomes arbitrary valid states, names possibly duplicated).
void inject_fault_burst(Simulation<SublinearTimeSSR>& sim,
                        const SublinearParams& params, std::uint32_t count,
                        std::uint64_t seed) {
  const auto scrambled =
      sublinear_config(params, SlAdversary::kUniformRandom, seed);
  Rng pick(seed ^ 0xfeed);
  for (std::uint32_t k = 0; k < count; ++k) {
    const auto victim = static_cast<std::uint32_t>(pick.below(kFleet));
    sim.mutable_states()[victim] = scrambled[victim];
  }
}

double recover(Simulation<SublinearTimeSSR>& sim) {
  const double start = sim.parallel_time();
  while (!is_correctly_ranked(sim.protocol(), sim.states())) sim.step();
  // Let the ranking settle a little to make sure no stale timer fires.
  const auto params = sim.protocol().params();
  sim.run(static_cast<std::uint64_t>(params.th) * 2 * kFleet);
  while (!is_correctly_ranked(sim.protocol(), sim.states())) sim.step();
  return sim.parallel_time() - start;
}

}  // namespace

int main(int argc, char** argv) {
  require_no_args(argc, argv);
  const SublinearParams params = SublinearParams::constant_h(kFleet, 2);
  SublinearTimeSSR protocol(params);

  // The fleet boots with whatever was in memory: fully adversarial (the
  // `uniform-random` generator from the initial-condition catalog).
  Simulation<SublinearTimeSSR> sim(
      protocol,
      sublinear_inits().agents(protocol, "uniform-random", /*seed=*/2021),
      /*seed=*/7);

  std::printf("fleet of %u sensors, H = %u, names of %u bits\n", kFleet,
              params.depth_h, params.name_len);

  const double boot = recover(sim);
  const auto leader0 = unique_leader(sim.protocol(), sim.states());
  std::printf("[boot    ] self-organized in %7.1f time units; leader = "
              "sensor %u\n",
              boot, *leader0);

  struct Burst {
    const char* label;
    std::uint32_t victims;
  };
  const Burst bursts[] = {
      {"cosmic ray hits 3 sensors", 3},
      {"radio interference corrupts half the fleet", kFleet / 2},
      {"power glitch scrambles every sensor", kFleet},
  };

  std::uint64_t seed = 100;
  for (const Burst& b : bursts) {
    sim.run(5000);  // normal operation
    inject_fault_burst(sim, params, b.victims, seed++);
    const double latency = recover(sim);
    const auto leader = unique_leader(sim.protocol(), sim.states());
    std::printf("[fault   ] %-45s -> re-stabilized in %7.1f time units; "
                "leader = sensor %u\n",
                b.label, latency, *leader);
  }

  const auto& c = sim.counters();
  std::printf("\nlifetime statistics: %llu collision triggers, %llu ghost "
              "triggers, %llu resets executed\n",
              static_cast<unsigned long long>(c.collision_triggers),
              static_cast<unsigned long long>(c.ghost_triggers),
              static_cast<unsigned long long>(c.resets_executed));
  std::printf("no sensor was ever re-initialized externally: recovery is "
              "entirely emergent (self-stabilization)\n");
  return 0;
}
