// Quickstart: self-stabilizing ranking and leader election in five minutes.
//
// We drop 100 agents into a hostile, completely scrambled initial
// configuration (as if every memory bit had been hit by transient faults),
// run Optimal-Silent-SSR (the paper's O(n)-time, O(n)-state silent
// protocol), and watch the population detect the inconsistency, reset,
// elect a leader during the dormant phase, and rebuild the ranking
// 1..n via the binary rank tree.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "analysis/adversary.h"
#include "core/simulation.h"
#include "protocols/leader.h"
#include "protocols/optimal_silent.h"

using namespace ppsim;

int main() {
  constexpr std::uint32_t kN = 100;
  const auto params = OptimalSilentParams::standard(kN);
  OptimalSilentSSR protocol(params);

  // An adversarial start: every field of every agent uniformly random.
  auto initial =
      optimal_silent_config(params, OsAdversary::kUniformRandom, /*seed=*/7);

  Simulation<OptimalSilentSSR> sim(protocol, std::move(initial), /*seed=*/42);

  std::printf("n = %u agents, Emax = %u, Dmax = %u, Rmax = %u\n", kN,
              params.emax, params.dmax, params.rmax);
  std::printf("%10s %12s %12s %12s %10s\n", "time", "settled", "unsettled",
              "resetting", "ranked?");

  auto count_roles = [&](OsRole role) {
    std::uint32_t c = 0;
    for (const auto& s : sim.states())
      if (s.role == role) ++c;
    return c;
  };

  double next_report = 0;
  while (!is_correctly_ranked(sim.protocol(), sim.states())) {
    sim.step();
    if (sim.parallel_time() >= next_report) {
      std::printf("%10.1f %12u %12u %12u %10s\n", sim.parallel_time(),
                  count_roles(OsRole::Settled), count_roles(OsRole::Unsettled),
                  count_roles(OsRole::Resetting),
                  is_correctly_ranked(sim.protocol(), sim.states()) ? "yes"
                                                                    : "no");
      next_report += 100.0;
    }
  }

  std::printf("\nstabilized at parallel time %.1f (%llu interactions)\n",
              sim.parallel_time(),
              static_cast<unsigned long long>(sim.interactions()));
  const auto& counters = sim.protocol().counters();
  std::printf("resets: %llu collision triggers, %llu timeout triggers\n",
              static_cast<unsigned long long>(counters.collision_triggers),
              static_cast<unsigned long long>(counters.timeout_triggers));

  const auto leader = unique_leader(sim.protocol(), sim.states());
  std::printf("leader (rank 1) is agent %u\n", *leader);
  std::printf("first ranks: ");
  for (std::uint32_t r = 1; r <= 10; ++r) {
    for (std::uint32_t i = 0; i < kN; ++i)
      if (sim.protocol().rank_of(sim.states()[i]) == r)
        std::printf("%u->agent%u ", r, i);
  }
  std::printf("...\n");
  return 0;
}
