// Quickstart: self-stabilizing ranking and leader election in five minutes,
// on either simulation backend.
//
// We drop 100 agents into a hostile, completely scrambled initial
// configuration (as if every memory bit had been hit by transient faults),
// run Optimal-Silent-SSR (the paper's O(n)-time, O(n)-state silent
// protocol), and watch the population detect the inconsistency, reset,
// elect a leader during the dormant phase, and rebuild the ranking
// 1..n via the binary rank tree.
//
// The same generic driver runs on both engines of the unified Engine API —
// the agent-array Simulation and the count-based BatchSimulation — because
// it only uses the shared contract (run/run_until, interactions,
// parallel_time, counters) plus a per-backend role census.
//
// Build & run:  ./build/quickstart                  # agent array (default)
//               ./build/quickstart --backend=batch  # count-based engine
#include <cstdio>

#include "common/cli.h"
#include "core/batch_simulation.h"
#include "core/engine.h"
#include "core/simulation.h"
#include "init/optimal_silent_init.h"
#include "protocols/leader.h"
#include "protocols/optimal_silent.h"

using namespace ppsim;

namespace {

constexpr std::uint32_t kN = 100;

// Role census, per backend: O(n) over agents or O(|Q|) over counts.
template <Engine EngineT>
std::uint32_t count_role(const EngineT& sim, OsRole role) {
  std::uint32_t count = 0;
  if constexpr (AgentArrayEngine<EngineT>) {
    for (const auto& s : sim.states())
      if (s.role == role) ++count;
  } else {
    const auto& counts = sim.state_counts();
    for (std::uint32_t q = 0; q < counts.size(); ++q)
      if (counts[q] > 0 && sim.protocol().decode(q).role == role)
        count += static_cast<std::uint32_t>(counts[q]);
  }
  return count;
}

template <Engine EngineT>
bool ranked(const EngineT& sim) {
  if constexpr (AgentArrayEngine<EngineT>) {
    return is_correctly_ranked(sim.protocol(), sim.states());
  } else {
    return is_correctly_ranked(sim.protocol(), sim.state_counts());
  }
}

// The backend-agnostic demo: one driver, either engine.
template <Engine EngineT>
int drive(EngineT sim, const OptimalSilentParams& params) {
  std::printf("n = %u agents, Emax = %u, Dmax = %u, Rmax = %u\n", kN,
              params.emax, params.dmax, params.rmax);
  std::printf("%10s %12s %12s %12s %10s\n", "time", "settled", "unsettled",
              "resetting", "ranked?");

  double next_report = 0;
  while (!ranked(sim)) {
    // Advance in small bursts; the batched engine may overshoot a burst by
    // the tail of a geometric null-skip, which is real simulated time.
    sim.run(kN / 2);
    if (sim.parallel_time() >= next_report) {
      std::printf("%10.1f %12u %12u %12u %10s\n", sim.parallel_time(),
                  count_role(sim, OsRole::Settled),
                  count_role(sim, OsRole::Unsettled),
                  count_role(sim, OsRole::Resetting),
                  ranked(sim) ? "yes" : "no");
      next_report += 100.0;
    }
  }

  std::printf("\nstabilized at parallel time %.1f (%llu interactions)\n",
              sim.parallel_time(),
              static_cast<unsigned long long>(sim.interactions()));
  const auto& counters = sim.counters();
  std::printf("resets: %llu collision triggers, %llu timeout triggers\n",
              static_cast<unsigned long long>(counters.collision_triggers),
              static_cast<unsigned long long>(counters.timeout_triggers));

  if constexpr (AgentArrayEngine<EngineT>) {
    const auto leader = unique_leader(sim.protocol(), sim.states());
    std::printf("leader (rank 1) is agent %u\n", *leader);
    std::printf("first ranks: ");
    for (std::uint32_t r = 1; r <= 10; ++r) {
      for (std::uint32_t i = 0; i < kN; ++i)
        if (sim.protocol().rank_of(sim.states()[i]) == r)
          std::printf("%u->agent%u ", r, i);
    }
    std::printf("...\n");
  } else {
    // The count-based engine is anonymous: agents have no identity, only
    // states do — exactly why it runs in O(|Q|) memory.
    std::printf("unique leader: %s (count-based view; agents are anonymous "
                "under the batched engine)\n",
                has_unique_leader(sim.protocol(), sim.state_counts())
                    ? "yes"
                    : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool batch = parse_backend_flag(argc, argv);

  const auto params = OptimalSilentParams::standard(kN);
  OptimalSilentSSR protocol(params);
  // An adversarial start from the named initial-condition catalog: every
  // field of every agent uniformly random. The same generator feeds either
  // backend (counts for the batched engine, agents for the array).
  const auto& inits = optimal_silent_inits();

  std::printf("backend: %s\n", batch ? "count-based batched" : "agent array");
  if (batch) {
    return drive(BatchSimulation<OptimalSilentSSR>(
                     protocol, inits.counts(protocol, "uniform-random", 7),
                     /*seed=*/42),
                 params);
  }
  return drive(Simulation<OptimalSilentSSR>(
                   protocol, inits.agents(protocol, "uniform-random", 7),
                   /*seed=*/42),
               params);
}
