// ppsle_run: the declarative scenario runner over the protocol registry.
//
// One binary replaces the per-experiment flag parsing of the bench
// binaries for ad-hoc and matrix experimentation: every cell of
// (protocol x n x adversarial init x engine/strategy x stop condition) is
// a ScenarioSpec executed by the registry (core/registry.h,
// analysis/scenarios.h), and results are emitted both as human tables and
// in the BENCH_*.json schema tools/bench_compare diffs.
//
// Modes:
//   ppsle_run --list
//       Print the registry: every protocol with its state space, engines,
//       initial conditions and stop conditions.
//   ppsle_run --scenario key=val [key=val ...]
//       Run one scenario. Keys: protocol, n, init, engine, strategy,
//       shards, until, trials, seed, threads, max_interactions, ptime,
//       tail, topology, label, param.<name> (protocol-constant override,
//       e.g. param.rmax_factor=2). Unknown keys/values are hard errors.
//   ppsle_run --matrix file.json
//       Run a sweep matrix: the JSON's "matrix" object maps spec keys to
//       value lists (full cross product), "defaults" seeds every cell, and
//       "scenarios" appends explicit extra cells. Cells that collapse to
//       the same resolved configuration (e.g. strategy variants of an
//       array-only protocol) run once.
//
// Common flags: --out=<name> names the BENCH_<name>.json (default
// "scenarios" or the matrix file's "name").
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/json.h"
#include "core/table.h"

namespace ppsim {
namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "ppsle_run: " << message << "\n"
            << "usage: ppsle_run --list\n"
            << "       ppsle_run --scenario key=val [key=val ...] "
               "[--out=<name>]\n"
            << "       ppsle_run --matrix <file.json> [--out=<name>]\n";
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (...) {
    usage_error("value of '" + key + "' is not an integer: '" + value + "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (...) {
    usage_error("value of '" + key + "' is not a number: '" + value + "'");
  }
}

// Applies one key=value pair to a spec; `label` is the caller-chosen
// experiment name for the JSON records. Unknown keys are hard errors.
void apply_kv(ScenarioSpec& spec, std::string& label, const std::string& key,
              const std::string& value) {
  if (key == "protocol") {
    spec.protocol = value;
  } else if (key == "n") {
    spec.n = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "init") {
    spec.init = value;
  } else if (key == "engine") {
    spec.engine = value;
  } else if (key == "strategy") {
    spec.strategy = value;
  } else if (key == "shards") {
    spec.shards = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "until") {
    spec.until = value;
  } else if (key == "trials") {
    spec.trials = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "seed") {
    spec.seed = parse_u64(key, value);
  } else if (key == "threads") {
    spec.threads = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "max_interactions") {
    spec.max_interactions = parse_u64(key, value);
  } else if (key == "ptime") {
    spec.horizon_ptime = parse_double(key, value);
  } else if (key == "tail") {
    spec.tail_ptime = parse_double(key, value);
  } else if (key == "tau.eps") {
    // Approximate-tier knob: the tau-leap size (strategy=tau) or the RK4
    // step (engine=ode). 0 keeps the engine default.
    spec.tau_eps = parse_double(key, value);
  } else if (key == "fault.drop") {
    // Fault-injection knobs (core/faults.h); ranges are validated by
    // run_scenario (spec.faults.validate()), which also rejects faults on
    // the approximate tier. Any non-zero knob stamps the record `faulted`.
    spec.faults.drop = parse_double(key, value);
  } else if (key == "fault.oneway") {
    spec.faults.oneway = parse_double(key, value);
  } else if (key == "fault.churn") {
    spec.faults.churn = parse_double(key, value);
  } else if (key == "topology") {
    // Interaction graph (core/topology.h). Validated structurally here so
    // a typo'd graph name dies at parse time like any other bad key; the
    // n-dependent checks (mesh dims vs population) happen in run_scenario.
    try {
      Topology::validate_spec(value);
    } catch (const std::exception& e) {
      usage_error(std::string("value of 'topology' is invalid: ") + e.what());
    }
    spec.topology = value;
  } else if (key == "label") {
    label = value;
  } else if (key.rfind("param.", 0) == 0 && key.size() > 6) {
    // Protocol-constant override, passed through verbatim; the protocol's
    // registered runner validates the name and value (unknown names are
    // hard errors there, matching the unknown-key policy here).
    spec.params.emplace_back(key.substr(6), value);
  } else {
    usage_error("unknown scenario key '" + key +
                "' (known: protocol n init engine strategy shards until "
                "trials seed threads max_interactions ptime tail tau.eps "
                "fault.drop fault.oneway fault.churn topology label "
                "param.<name>)");
  }
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

int list_registry() {
  const ProtocolRegistry& reg = default_registry();
  std::cout << "registered protocols (" << reg.all().size() << "):\n\n";
  Table t({"protocol", "n", "states", "engines", "until (default first)",
           "description"});
  for (const ProtocolEntry& e : reg.all()) {
    std::vector<std::string> untils = {e.default_until};
    for (const auto& u : e.untils)
      if (u != e.default_until) untils.push_back(u);
    t.add_row({e.name,
               e.fixed_n ? "= " + std::to_string(e.fixed_n) : "any",
               e.states, e.batch_capable ? "array, batch" : "array",
               join(untils, " | "), e.description});
  }
  t.print();
  std::cout << "\ninitial conditions (default first):\n";
  for (const ProtocolEntry& e : reg.all()) {
    std::vector<std::string> inits = {e.default_init};
    for (const auto& i : e.inits)
      if (i != e.default_init) inits.push_back(i);
    std::cout << "  " << e.name << ": " << join(inits, ", ") << "\n";
  }
  std::cout << "\nexample:\n  ppsle_run --scenario protocol=optimal-silent "
               "n=1024 init=duplicate-rank until=detected trials=5\n";
  return 0;
}

std::string default_label(const ScenarioSpec& spec,
                          const ScenarioResult& result) {
  return "scenario_" + spec.protocol + "_" + result.init + "_" +
         result.until;
}

// Runs one spec, prints a table row, appends the JSON record. Returns
// false if the spec was inexpressible (which is fatal for --scenario and a
// hard error for --matrix too: matrix files are checked against the
// registry before expansion).
void run_and_report(const ScenarioSpec& spec, const std::string& label,
                    Table& table, BenchReport& report) {
  const ScenarioResult r = run_scenario(spec);
  // "auto:" marks cells where the strategy controller (not the spec) chose
  // the whole-run arm from the initial occupancy.
  const std::string engine_desc =
      (r.engine_arm.empty() ? "" : "auto:") +
      (r.backend == "batch" ? r.backend + "/" + r.strategy : r.backend);
  table.add_row(
      {spec.protocol, std::to_string(r.n), r.init, engine_desc, r.until,
       std::to_string(r.trials),
       fmt(r.summary.mean, 3) + " +/- " + fmt(r.summary.ci95, 3),
       r.metric, std::to_string(r.failed), fmt(r.wall_seconds, 3)});
  report_scenario(report, label.empty() ? default_label(spec, r) : label,
                  r);
}

int run_single(const std::vector<std::string>& kvs, std::string out_name) {
  ScenarioSpec spec;
  std::string label;
  for (const std::string& kv : kvs) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos)
      usage_error("expected key=val after --scenario, got '" + kv + "'");
    apply_kv(spec, label, kv.substr(0, eq), kv.substr(eq + 1));
  }
  if (spec.protocol.empty()) usage_error("--scenario needs protocol=<name>");
  BenchReport report(out_name.empty() ? "scenarios" : out_name);
  Table t({"protocol", "n", "init", "engine", "until", "trials",
           "metric mean +/- ci95", "metric", "failed", "wall s"});
  run_and_report(spec, label, t, report);
  t.print();
  const std::string path = report.write();
  if (!path.empty()) std::cout << "machine-readable results: " << path << "\n";
  return 0;
}

std::string json_scalar_to_string(const JsonValue& v, const char* where) {
  if (v.is_string()) return v.str;
  if (v.is_number()) {
    // Spec integers must round-trip exactly; print without exponent. The
    // range check keeps the float->uint64 cast defined (negatives and
    // huge values — e.g. a tail=-0.5 default — take the %g path).
    char buf[64];
    const bool integral =
        v.num >= 0 && v.num < 1.8446744073709552e19 &&
        v.num == static_cast<double>(static_cast<std::uint64_t>(v.num));
    if (integral)
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(v.num));
    else
      std::snprintf(buf, sizeof buf, "%.17g", v.num);
    return buf;
  }
  usage_error(std::string(where) + ": values must be strings or numbers");
}

void apply_json_object(ScenarioSpec& spec, std::string& label,
                       const JsonValue& obj, const char* where) {
  for (const auto& [key, value] : obj.fields)
    apply_kv(spec, label, key, json_scalar_to_string(value, where));
}

int run_matrix(const std::string& path, std::string out_name) {
  std::ifstream in(path);
  if (!in) usage_error("cannot open matrix file '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  if (!JsonParser(buffer.str()).parse(root) || !root.is_object())
    usage_error("cannot parse matrix file '" + path + "'");

  if (out_name.empty()) {
    const JsonValue* name = root.get("name");
    out_name = (name != nullptr && name->is_string()) ? name->str
                                                      : "scenarios";
  }

  ScenarioSpec defaults;
  std::string default_label_override;
  if (const JsonValue* d = root.get("defaults"))
    apply_json_object(defaults, default_label_override, *d, "defaults");

  // Expand the cross product of the matrix lists into cells.
  struct Cell {
    ScenarioSpec spec;
    std::string label;
  };
  std::vector<Cell> cells;
  if (const JsonValue* matrix = root.get("matrix")) {
    if (!matrix->is_object())
      usage_error("'matrix' must be an object of key -> value list");
    cells.push_back({defaults, default_label_override});
    for (const auto& [key, values] : matrix->fields) {
      if (!values.is_array() || values.items.empty())
        usage_error("matrix key '" + key + "' must be a non-empty list");
      std::vector<Cell> expanded;
      expanded.reserve(cells.size() * values.items.size());
      for (const Cell& cell : cells) {
        for (const JsonValue& v : values.items) {
          Cell next = cell;
          apply_kv(next.spec, next.label, key,
                   json_scalar_to_string(v, "matrix"));
          expanded.push_back(std::move(next));
        }
      }
      cells = std::move(expanded);
    }
  }
  if (const JsonValue* extra = root.get("scenarios")) {
    if (!extra->is_array())
      usage_error("'scenarios' must be a list of spec objects");
    for (const JsonValue& obj : extra->items) {
      if (!obj.is_object())
        usage_error("'scenarios' entries must be objects");
      Cell cell{defaults, default_label_override};
      apply_json_object(cell.spec, cell.label, obj, "scenarios");
      cells.push_back(std::move(cell));
    }
  }
  if (cells.empty())
    usage_error("matrix file has neither 'matrix' nor 'scenarios'");

  BenchReport report(out_name);
  Table t({"protocol", "n", "init", "engine", "until", "trials",
           "metric mean +/- ci95", "metric", "failed", "wall s"});
  std::set<std::string> seen;
  std::uint32_t ran = 0, collapsed = 0;
  for (const Cell& cell : cells) {
    if (cell.spec.protocol.empty())
      usage_error("a matrix cell has no protocol (set it in 'defaults' or "
                  "the matrix)");
    const ProtocolEntry& entry = default_registry().at(cell.spec.protocol);
    // Resolve the parts of the identity the registry would resolve, so
    // cells that collapse (strategy sweeps over array-only protocols,
    // n sweeps over fixed-n protocols) run once instead of repeating.
    // Every other spec field joins the identity verbatim: cells differing
    // in seed/trials/horizon/... are distinct runs, never duplicates.
    const bool batch = entry.batch_capable && cell.spec.engine != "array";
    const bool approx = cell.spec.engine == "ode" ||
                        (batch && (cell.spec.strategy == "tau" ||
                                   cell.spec.strategy == "tau_leap"));
    const std::string identity =
        cell.spec.protocol + "|" +
        std::to_string(entry.fixed_n
                           ? entry.fixed_n
                           : (cell.spec.n ? cell.spec.n : entry.default_n)) +
        "|" + (cell.spec.init.empty() ? entry.default_init : cell.spec.init) +
        "|" +
        (cell.spec.engine == "ode"
             ? "ode"
             : (batch ? "batch/" + cell.spec.strategy : "array")) +
        "|" +
        (batch && cell.spec.strategy == "sharded"
             ? "shards=" + std::to_string(cell.spec.shards) + "|"
             : "") +
        (approx ? "tau_eps=" + std::to_string(cell.spec.tau_eps) + "|"
                : "") +
        (cell.spec.faults.active()
             ? "drop=" + std::to_string(cell.spec.faults.drop) + "|oneway=" +
                   std::to_string(cell.spec.faults.oneway) + "|churn=" +
                   std::to_string(cell.spec.faults.churn) + "|"
             : "") +
        // "" and "complete" are the same resolved graph, so normalize
        // before joining: a {""|"complete"} sweep collapses to one cell.
        (cell.spec.topology.empty() || cell.spec.topology == "complete"
             ? ""
             : "topology=" + cell.spec.topology + "|") +
        (cell.spec.until.empty() ? entry.default_until : cell.spec.until) +
        "|" + std::to_string(cell.spec.seed) + "|" +
        std::to_string(cell.spec.trials) + "|" +
        std::to_string(cell.spec.threads) + "|" +
        std::to_string(cell.spec.max_interactions) + "|" +
        std::to_string(cell.spec.horizon_ptime) + "|" +
        std::to_string(cell.spec.tail_ptime) + "|" + cell.label;
    std::string identity_params;
    for (const auto& [pk, pv] : cell.spec.params)
      identity_params += "|param." + pk + "=" + pv;
    const std::string full_identity = identity + identity_params;
    if (!seen.insert(full_identity).second) {
      ++collapsed;
      continue;
    }
    run_and_report(cell.spec, cell.label, t, report);
    ++ran;
  }
  t.print();
  std::cout << ran << " scenario(s) run";
  if (collapsed > 0) std::cout << ", " << collapsed << " duplicate cell(s) collapsed";
  std::cout << "\n";
  const std::string path_out = report.write();
  if (!path_out.empty())
    std::cout << "machine-readable results: " << path_out << "\n";
  return 0;
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  bool list = false;
  bool scenario_mode = false;
  std::string matrix_path, out_name;
  std::vector<std::string> kvs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") {
      list = true;
    } else if (a == "--scenario") {
      scenario_mode = true;
    } else if (a.rfind("--matrix=", 0) == 0) {
      matrix_path = a.substr(9);
    } else if (a == "--matrix") {
      if (i + 1 >= argc) ppsim::usage_error("--matrix needs a file path");
      matrix_path = argv[++i];
    } else if (a.rfind("--out=", 0) == 0) {
      out_name = a.substr(6);
    } else if (scenario_mode && a.find('=') != std::string::npos &&
               a.rfind("--", 0) != 0) {
      kvs.push_back(a);
    } else {
      ppsim::usage_error("unknown argument '" + a + "'");
    }
  }
  const int modes = (list ? 1 : 0) + (scenario_mode ? 1 : 0) +
                    (matrix_path.empty() ? 0 : 1);
  if (modes > 1)
    ppsim::usage_error(
        "--list, --scenario and --matrix are mutually exclusive");
  try {
    if (list) return ppsim::list_registry();
    if (scenario_mode) return ppsim::run_single(kvs, out_name);
    if (!matrix_path.empty()) return ppsim::run_matrix(matrix_path, out_name);
  } catch (const std::exception& e) {
    std::cerr << "ppsle_run: " << e.what() << "\n";
    return 2;
  }
  ppsim::usage_error("one of --list, --scenario, --matrix is required");
}
