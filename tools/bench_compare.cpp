// bench_compare: the perf-trend gate over BENCH_*.json artifacts.
//
// Every bench binary emits a BENCH_<name>.json (analysis/bench_report.h);
// this tool diffs two directories of them — a committed baseline (see
// bench/baseline/) against a fresh run — and fails on wall-clock
// regressions, closing the perf-tracking loop in CI:
//
//   bench_compare <baseline_dir> <candidate_dir>
//       [--threshold=0.2]    relative wall_seconds growth that counts as a
//                            regression (default 20%)
//       [--min-seconds=0.05] absolute wall-clock growth a regression must
//                            also exceed (keeps smoke-sized runs quiet)
//       [--strict]           also flag drift in the deterministic fields
//                            (interactions, parallel_time): same code +
//                            same seeds must reproduce them bit-for-bit,
//                            so any change means the simulated process
//                            changed and the baseline needs a deliberate
//                            refresh
//       [--host-gate]        key the baseline by this machine's fingerprint
//                            (CPU model + core count, common/host.h): if
//                            <baseline_dir>/<fingerprint-slug>/ exists, use
//                            it with the tight --tight threshold; otherwise
//                            fall back to <baseline_dir> with the loose
//                            --loose threshold. This is how CI applies the
//                            tight 20% gate on a runner that matches the
//                            committed baseline host while staying quiet on
//                            unknown hardware.
//       [--tight=0.2]        threshold when the host baseline matched
//       [--loose=1.5]        threshold when it did not
//
// Records are matched by identity key (bench, experiment, backend,
// strategy, n, mode — plus an occurrence index for repeated keys);
// everything else is treated as measurement. Records present only on one
// side are reported but are not failures (benches evolve). Exit status:
// 0 clean, 1 regressions (or --strict drift), 2 usage/I-O error.
//
// Without --host-gate the default 20% threshold is meant for same-machine
// A/B runs while optimizing; pass an explicit generous --threshold for
// cross-machine comparisons.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/host.h"
#include "common/json.h"

namespace {

using ppsim::JsonParser;
using ppsim::JsonValue;

struct Record {
  std::string key;  // identity: bench|experiment|backend|strategy|n|mode|#i
  std::map<std::string, double> metrics;  // numeric fields
};

std::string identity_field(const JsonValue& rec, const char* name) {
  const JsonValue* v = rec.get(name);
  if (v == nullptr) return "";
  if (v->kind == JsonValue::Kind::kString) return v->str;
  if (v->kind == JsonValue::Kind::kNumber) {
    std::ostringstream os;
    os << v->num;
    return os.str();
  }
  return "";
}

// Loads every BENCH_*.json in `dir` into keyed records.
bool load_dir(const std::string& dir, std::map<std::string, Record>& out,
              bool verbose) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    std::cerr << "bench_compare: not a directory: " << dir << "\n";
    return false;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::map<std::string, int> occurrence;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    JsonValue root;
    if (!JsonParser(text).parse(root) ||
        root.kind != JsonValue::Kind::kObject) {
      std::cerr << "bench_compare: cannot parse " << path << "\n";
      return false;
    }
    const JsonValue* bench = root.get("bench");
    const JsonValue* records = root.get("records");
    if (bench == nullptr || records == nullptr ||
        records->kind != JsonValue::Kind::kArray) {
      std::cerr << "bench_compare: unexpected schema in " << path << "\n";
      return false;
    }
    for (const JsonValue& r : records->items) {
      if (r.kind != JsonValue::Kind::kObject) continue;
      std::string key = bench->str;
      for (const char* field :
           {"experiment", "backend", "strategy", "n", "mode"}) {
        key.push_back('|');
        key.append(identity_field(r, field));
      }
      const int index = occurrence[key]++;
      key.append("|#");
      key.append(std::to_string(index));
      Record rec;
      rec.key = key;
      for (const auto& [k, v] : r.fields) {
        if (v.kind == JsonValue::Kind::kNumber) rec.metrics[k] = v.num;
        if (v.kind == JsonValue::Kind::kBool) rec.metrics[k] = v.b ? 1 : 0;
      }
      out.emplace(key, std::move(rec));
    }
  }
  if (verbose)
    std::cout << "loaded " << out.size() << " records from " << files.size()
              << " files in " << dir << "\n";
  return true;
}

bool dir_has_bench_json(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) return false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json")
      return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_dir, cand_dir;
  double threshold = 0.20;
  bool threshold_explicit = false;
  double min_seconds = 0.05;
  bool strict = false;
  bool host_gate = false;
  double tight = 0.20;
  double loose = 1.50;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(a.substr(12));
      threshold_explicit = true;
    } else if (a.rfind("--min-seconds=", 0) == 0) {
      min_seconds = std::stod(a.substr(14));
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--host-gate") {
      host_gate = true;
    } else if (a.rfind("--tight=", 0) == 0) {
      tight = std::stod(a.substr(8));
    } else if (a.rfind("--loose=", 0) == 0) {
      loose = std::stod(a.substr(8));
    } else if (base_dir.empty()) {
      base_dir = a;
    } else if (cand_dir.empty()) {
      cand_dir = a;
    } else {
      std::cerr << "bench_compare: unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (base_dir.empty() || cand_dir.empty()) {
    std::cerr << "usage: bench_compare <baseline_dir> <candidate_dir> "
                 "[--threshold=0.2] [--min-seconds=0.05] [--strict] "
                 "[--host-gate] [--tight=0.2] [--loose=1.5]\n";
    return 2;
  }

  if (host_gate) {
    // An explicit --threshold wins over the gate's tight/loose pair; the
    // gate then only selects the per-host baseline directory.
    const std::string host_dir =
        base_dir + "/" + ppsim::host_fingerprint_slug();
    if (dir_has_bench_json(host_dir)) {
      base_dir = host_dir;
      if (!threshold_explicit) threshold = tight;
      std::cout << "host-gate: matched baseline for '"
                << ppsim::host_fingerprint() << "' (" << host_dir
                << "); threshold " << threshold * 100 << "%\n";
    } else {
      if (!threshold_explicit) threshold = loose;
      std::cout << "host-gate: no baseline for '" << ppsim::host_fingerprint()
                << "' (looked for " << host_dir
                << "); cross-machine threshold " << threshold * 100
                << "%\n";
    }
  }

  std::map<std::string, Record> base, cand;
  if (!load_dir(base_dir, base, true) || !load_dir(cand_dir, cand, true))
    return 2;

  int regressions = 0, improvements = 0, compared = 0, drift = 0;
  int missing = 0, added = 0;
  for (const auto& [key, b] : base) {
    const auto it = cand.find(key);
    if (it == cand.end()) {
      ++missing;
      continue;
    }
    const Record& c = it->second;
    const auto bw = b.metrics.find("wall_seconds");
    const auto cw = c.metrics.find("wall_seconds");
    if (bw != b.metrics.end() && cw != c.metrics.end()) {
      // A regression must exceed the relative threshold AND an absolute
      // min_seconds of growth: the absolute floor keeps sub-noise records
      // (smoke runs) quiet without masking a large blowup from a tiny
      // baseline.
      ++compared;
      const double ratio = cw->second / std::max(bw->second, 1e-12);
      if (cw->second > bw->second * (1.0 + threshold) + min_seconds) {
        ++regressions;
        std::printf("REGRESSION  %-70s %8.3fs -> %8.3fs  (%.0f%%)\n",
                    key.c_str(), bw->second, cw->second,
                    (ratio - 1.0) * 100.0);
      } else if (cw->second < bw->second * (1.0 - threshold) - min_seconds) {
        ++improvements;
        std::printf("improved    %-70s %8.3fs -> %8.3fs  (%.0f%%)\n",
                    key.c_str(), bw->second, cw->second,
                    (ratio - 1.0) * 100.0);
      }
    }
    if (strict) {
      for (const char* field : {"interactions", "parallel_time"}) {
        const auto bf = b.metrics.find(field);
        const auto cf = c.metrics.find(field);
        if (bf == b.metrics.end() || cf == c.metrics.end()) continue;
        const double denom = std::max(1.0, std::fabs(bf->second));
        if (std::fabs(bf->second - cf->second) / denom > 1e-9) {
          ++drift;
          std::printf("DRIFT       %-70s %s %.17g -> %.17g\n", key.c_str(),
                      field, bf->second, cf->second);
        }
      }
    }
  }
  for (const auto& [key, c] : cand)
    if (base.find(key) == base.end()) ++added;

  std::printf(
      "\nbench_compare: %d wall-clock comparisons, %d regressions "
      "(> %.0f%% and > %.2fs growth), %d improvements, %d drifted, "
      "%d baseline-only, %d new\n",
      compared, regressions, threshold * 100.0, min_seconds, improvements,
      drift, missing, added);
  return regressions > 0 || drift > 0 ? 1 : 0;
}
