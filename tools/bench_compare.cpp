// bench_compare: the perf-trend gate over BENCH_*.json artifacts.
//
// Every bench binary emits a BENCH_<name>.json (analysis/bench_report.h);
// this tool diffs two directories of them — a committed baseline (see
// bench/baseline/) against a fresh run — and fails on wall-clock
// regressions, closing the perf-tracking loop in CI:
//
//   bench_compare <baseline_dir> <candidate_dir>
//       [--threshold=0.2]    relative wall_seconds growth that counts as a
//                            regression (default 20%)
//       [--min-seconds=0.05] absolute wall-clock growth a regression must
//                            also exceed (keeps smoke-sized runs quiet)
//       [--strict]           also flag drift in the deterministic fields
//                            (interactions, parallel_time): same code +
//                            same seeds must reproduce them bit-for-bit,
//                            so any change means the simulated process
//                            changed and the baseline needs a deliberate
//                            refresh
//
// Records are matched by identity key (bench, experiment, backend,
// strategy, n, mode — plus an occurrence index for repeated keys);
// everything else is treated as measurement. Records present only on one
// side are reported but are not failures (benches evolve). Exit status:
// 0 clean, 1 regressions (or --strict drift), 2 usage/I-O error.
//
// CI runs this with a generous threshold (cross-machine wall-clock noise
// between the baseline host and the runner); the default 20% is meant for
// same-machine A/B runs while optimizing.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- Minimal JSON parser (objects/arrays/strings/numbers/bools/null),
// sufficient for the flat schema bench_report.h emits. -----------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') {
      const bool is_true = c == 't';
      const char* word = is_true ? "true" : "false";
      const std::size_t len = is_true ? 4 : 5;
      if (s_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      out.kind = JsonValue::Kind::kBool;
      out.b = is_true;
      return true;
    }
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) return false;
      pos_ += 4;
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return parse_number(out);
  }

  bool parse_string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          // The emitter only writes \u00XX control escapes; encode as-is.
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::strchr("+-.eE", s_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) return false;
    try {
      out.num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Record model ------------------------------------------------------------

struct Record {
  std::string key;  // identity: bench|experiment|backend|strategy|n|mode|#i
  std::map<std::string, double> metrics;  // numeric fields
};

std::string identity_field(const JsonValue& rec, const char* name) {
  const JsonValue* v = rec.get(name);
  if (v == nullptr) return "";
  if (v->kind == JsonValue::Kind::kString) return v->str;
  if (v->kind == JsonValue::Kind::kNumber) {
    std::ostringstream os;
    os << v->num;
    return os.str();
  }
  return "";
}

// Loads every BENCH_*.json in `dir` into keyed records.
bool load_dir(const std::string& dir, std::map<std::string, Record>& out,
              bool verbose) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    std::cerr << "bench_compare: not a directory: " << dir << "\n";
    return false;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::map<std::string, int> occurrence;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    JsonValue root;
    if (!JsonParser(text).parse(root) ||
        root.kind != JsonValue::Kind::kObject) {
      std::cerr << "bench_compare: cannot parse " << path << "\n";
      return false;
    }
    const JsonValue* bench = root.get("bench");
    const JsonValue* records = root.get("records");
    if (bench == nullptr || records == nullptr ||
        records->kind != JsonValue::Kind::kArray) {
      std::cerr << "bench_compare: unexpected schema in " << path << "\n";
      return false;
    }
    for (const JsonValue& r : records->items) {
      if (r.kind != JsonValue::Kind::kObject) continue;
      std::string key = bench->str;
      for (const char* field :
           {"experiment", "backend", "strategy", "n", "mode"}) {
        key.push_back('|');
        key.append(identity_field(r, field));
      }
      const int index = occurrence[key]++;
      key.append("|#");
      key.append(std::to_string(index));
      Record rec;
      rec.key = key;
      for (const auto& [k, v] : r.fields) {
        if (v.kind == JsonValue::Kind::kNumber) rec.metrics[k] = v.num;
        if (v.kind == JsonValue::Kind::kBool) rec.metrics[k] = v.b ? 1 : 0;
      }
      out.emplace(key, std::move(rec));
    }
  }
  if (verbose)
    std::cout << "loaded " << out.size() << " records from " << files.size()
              << " files in " << dir << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_dir, cand_dir;
  double threshold = 0.20;
  double min_seconds = 0.05;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(a.substr(12));
    } else if (a.rfind("--min-seconds=", 0) == 0) {
      min_seconds = std::stod(a.substr(14));
    } else if (a == "--strict") {
      strict = true;
    } else if (base_dir.empty()) {
      base_dir = a;
    } else if (cand_dir.empty()) {
      cand_dir = a;
    } else {
      std::cerr << "bench_compare: unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (base_dir.empty() || cand_dir.empty()) {
    std::cerr << "usage: bench_compare <baseline_dir> <candidate_dir> "
                 "[--threshold=0.2] [--min-seconds=0.05] [--strict]\n";
    return 2;
  }

  std::map<std::string, Record> base, cand;
  if (!load_dir(base_dir, base, true) || !load_dir(cand_dir, cand, true))
    return 2;

  int regressions = 0, improvements = 0, compared = 0, drift = 0;
  int missing = 0, added = 0;
  for (const auto& [key, b] : base) {
    const auto it = cand.find(key);
    if (it == cand.end()) {
      ++missing;
      continue;
    }
    const Record& c = it->second;
    const auto bw = b.metrics.find("wall_seconds");
    const auto cw = c.metrics.find("wall_seconds");
    if (bw != b.metrics.end() && cw != c.metrics.end()) {
      // A regression must exceed the relative threshold AND an absolute
      // min_seconds of growth: the absolute floor keeps sub-noise records
      // (smoke runs) quiet without masking a large blowup from a tiny
      // baseline.
      ++compared;
      const double ratio = cw->second / std::max(bw->second, 1e-12);
      if (cw->second > bw->second * (1.0 + threshold) + min_seconds) {
        ++regressions;
        std::printf("REGRESSION  %-70s %8.3fs -> %8.3fs  (%.0f%%)\n",
                    key.c_str(), bw->second, cw->second,
                    (ratio - 1.0) * 100.0);
      } else if (cw->second < bw->second * (1.0 - threshold) - min_seconds) {
        ++improvements;
        std::printf("improved    %-70s %8.3fs -> %8.3fs  (%.0f%%)\n",
                    key.c_str(), bw->second, cw->second,
                    (ratio - 1.0) * 100.0);
      }
    }
    if (strict) {
      for (const char* field : {"interactions", "parallel_time"}) {
        const auto bf = b.metrics.find(field);
        const auto cf = c.metrics.find(field);
        if (bf == b.metrics.end() || cf == c.metrics.end()) continue;
        const double denom = std::max(1.0, std::fabs(bf->second));
        if (std::fabs(bf->second - cf->second) / denom > 1e-9) {
          ++drift;
          std::printf("DRIFT       %-70s %s %.17g -> %.17g\n", key.c_str(),
                      field, bf->second, cf->second);
        }
      }
    }
  }
  for (const auto& [key, c] : cand)
    if (base.find(key) == base.end()) ++added;

  std::printf(
      "\nbench_compare: %d wall-clock comparisons, %d regressions "
      "(> %.0f%% and > %.2fs growth), %d improvements, %d drifted, "
      "%d baseline-only, %d new\n",
      compared, regressions, threshold * 100.0, min_seconds, improvements,
      drift, missing, added);
  return regressions > 0 || drift > 0 ? 1 : 0;
}
