// bench_compare: the perf-trend gate over BENCH_*.json artifacts.
//
// Every bench binary emits a BENCH_<name>.json (analysis/bench_report.h);
// this tool diffs two directories of them — a committed baseline (see
// bench/baseline/) against a fresh run — and fails on wall-clock
// regressions, closing the perf-tracking loop in CI:
//
//   bench_compare <baseline_dir> <candidate_dir>
//       [--threshold=0.2]    relative wall_seconds growth that counts as a
//                            regression (default 20%)
//       [--min-seconds=0.05] absolute wall-clock growth a regression must
//                            also exceed (keeps smoke-sized runs quiet)
//       [--strict]           also flag drift in the deterministic fields
//                            (interactions, parallel_time): same code +
//                            same seeds must reproduce them bit-for-bit,
//                            so any change means the simulated process
//                            changed and the baseline needs a deliberate
//                            refresh. Records stamped "approximate": true
//                            (the strategy=tau / engine=ode tier) are a
//                            separate class: wall-time gated like everything
//                            else, but never strict-diffed — the approximate
//                            engines may re-tune between commits, and their
//                            sampled values carry no bit-for-bit contract.
//                            Records stamped "abstracted": true (count-form
//                            protocol quotients, e.g. sublinear-*-count) get
//                            the same treatment: the abstraction itself may
//                            be re-tuned, so they are wall-gated only.
//       [--host-gate]        key the baseline by this machine's fingerprint
//                            (CPU model + core count, common/host.h): if
//                            <baseline_dir>/<fingerprint-slug>/ exists, use
//                            it with the tight --tight threshold; otherwise
//                            fall back to <baseline_dir> with the loose
//                            --loose threshold. This is how CI applies the
//                            tight 20% gate on a runner that matches the
//                            committed baseline host while staying quiet on
//                            unknown hardware.
//       [--tight=0.2]        threshold when the host baseline matched
//       [--loose=1.5]        threshold when it did not
//
// Record identity, loading, and the comparison itself live in
// analysis/bench_records.h (shared with the unit tests); records present
// only on one side are reported but are not failures (benches evolve).
// Exit status: 0 clean, 1 regressions (or --strict drift), 2 usage/IO
// error.
//
// Without --host-gate the default 20% threshold is meant for same-machine
// A/B runs while optimizing; pass an explicit generous --threshold for
// cross-machine comparisons.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>

#include "analysis/bench_records.h"
#include "common/host.h"

namespace {

bool dir_has_bench_json(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) return false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json")
      return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_dir, cand_dir;
  ppsim::benchcmp::CompareOptions opts;
  bool threshold_explicit = false;
  bool host_gate = false;
  double tight = 0.20;
  double loose = 1.50;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--threshold=", 0) == 0) {
      opts.threshold = std::stod(a.substr(12));
      threshold_explicit = true;
    } else if (a.rfind("--min-seconds=", 0) == 0) {
      opts.min_seconds = std::stod(a.substr(14));
    } else if (a == "--strict") {
      opts.strict = true;
    } else if (a == "--host-gate") {
      host_gate = true;
    } else if (a.rfind("--tight=", 0) == 0) {
      tight = std::stod(a.substr(8));
    } else if (a.rfind("--loose=", 0) == 0) {
      loose = std::stod(a.substr(8));
    } else if (base_dir.empty()) {
      base_dir = a;
    } else if (cand_dir.empty()) {
      cand_dir = a;
    } else {
      std::cerr << "bench_compare: unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (base_dir.empty() || cand_dir.empty()) {
    std::cerr << "usage: bench_compare <baseline_dir> <candidate_dir> "
                 "[--threshold=0.2] [--min-seconds=0.05] [--strict] "
                 "[--host-gate] [--tight=0.2] [--loose=1.5]\n";
    return 2;
  }

  if (host_gate) {
    // An explicit --threshold wins over the gate's tight/loose pair; the
    // gate then only selects the per-host baseline directory.
    const std::string host_dir =
        base_dir + "/" + ppsim::host_fingerprint_slug();
    if (dir_has_bench_json(host_dir)) {
      base_dir = host_dir;
      if (!threshold_explicit) opts.threshold = tight;
      std::cout << "host-gate: matched baseline for '"
                << ppsim::host_fingerprint() << "' (" << host_dir
                << "); threshold " << opts.threshold * 100 << "%\n";
    } else {
      if (!threshold_explicit) opts.threshold = loose;
      std::cout << "host-gate: no baseline for '" << ppsim::host_fingerprint()
                << "' (looked for " << host_dir
                << "); cross-machine threshold " << opts.threshold * 100
                << "%\n";
    }
  }

  std::map<std::string, ppsim::benchcmp::Record> base, cand;
  if (!ppsim::benchcmp::load_dir(base_dir, base, true) ||
      !ppsim::benchcmp::load_dir(cand_dir, cand, true))
    return 2;

  const ppsim::benchcmp::CompareStats stats =
      ppsim::benchcmp::compare(base, cand, opts);

  std::printf(
      "\nbench_compare: %d wall-clock comparisons, %d regressions "
      "(> %.0f%% and > %.2fs growth), %d improvements, %d drifted "
      "(%d approximate + %d abstracted records exempt), %d baseline-only, "
      "%d new\n",
      stats.compared, stats.regressions, opts.threshold * 100.0,
      opts.min_seconds, stats.improvements, stats.drift, stats.approx_exempt,
      stats.abstracted_exempt, stats.missing, stats.added);
  return stats.failed() ? 1 : 0;
}
