// Experiments T4.3 / C4.4 / L4.1 / L4.2 (see DESIGN.md): Optimal-Silent-SSR.
//
// The stabilization and tree-ranking sweeps are thin wrappers over the
// Scenario API (one ScenarioSpec per cell, batched backend + parallel seed
// fan-out for stabilization, agent array for Lemma 4.1); the Lemma 4.1
// per-level microscope and the Lemma 4.2 awakening census keep custom
// agent-array loops — they inspect individual agent states, which is
// exactly what the count-based engine anonymizes away.
//
//   * full stabilization from adversarial starts is Theta(n) expected and
//     O(n log n) whp (log-log slope ~1; p99/mean stays bounded)
//   * the binary-tree rank assignment from a single leader is O(n)
//     (Lemma 4.1), with per-level times proportional to the level size
//   * awakening configurations carry a unique leader with high constant
//     probability at Dmax = 8n (Lemma 4.2)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/cli.h"
#include "core/simulation.h"
#include "init/optimal_silent_init.h"

namespace ppsim {
namespace {

void experiment_stabilization(const BenchScale& scale, BenchReport& report) {
  // Engine strategy: auto by default (the run crosses timer-heavy reset
  // epochs and silent-heavy endgames, so the density switch pays on both);
  // --strategy= pins one path for A/B runs, and the choice is recorded in
  // every BENCH record so bench_compare never mixes configurations.
  const std::string strategy =
      scale.strategy_name.empty() ? "auto" : scale.strategy_name;
  std::cout << "(batched backend strategy: " << strategy << ")\n";
  for (const char* init :
       {"uniform-random", "duplicate-rank", "all-leaders"}) {
    Sweep sweep;
    // The batched backend extends the sweep beyond the agent array's
    // practical range (4096 by default, 8192 under --full).
    auto sizes = scale.sizes({64, 128, 256, 512, 1024, 2048, 4096});
    if (scale.full) sizes.push_back(8192);
    for (std::uint32_t n : sizes) {
      ScenarioSpec spec;
      spec.protocol = "optimal-silent";
      spec.init = init;
      spec.engine = "batch";
      spec.strategy = strategy;
      spec.trials = scale.trials(n <= 512 ? 20 : (n <= 2048 ? 8 : 4));
      spec.n = n;
      spec.seed = 1000 + n;
      spec.threads = scale.threads;
      sweep.points.push_back(
          {static_cast<double>(n), run_scenario(spec).summary});
    }
    print_sweep(std::string("T4.3: stabilization time from '") + init +
                    "' start (batched backend)",
                sweep);
    report_sweep_strategy(report, std::string("stabilization_") + init,
                          "batch", strategy, sweep);
    std::cout << "paper: Theta(n) expected (slope ~1); O(n log n) whp "
                 "(p99/mean grows at most logarithmically)\n";
    Table t({"n", "time/n (expected O(1))", "p99/mean"});
    for (const auto& pt : sweep.points)
      t.add_row({fmt(pt.n, 0), fmt(pt.summary.mean / pt.n, 3),
                 fmt(pt.summary.p99 / pt.summary.mean, 2)});
    t.print();
  }
}

// Lemma 4.1: leader-driven binary-tree ranking from one Settled leader
// (the `single-leader` initial condition).
void experiment_tree_ranking(const BenchScale& scale, BenchReport& report) {
  Sweep sweep;
  for (std::uint32_t n : scale.sizes({64, 256, 1024, 4096})) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = "single-leader";
    spec.engine = "array";
    spec.trials = scale.trials(n <= 1024 ? 30 : 10);
    spec.n = n;
    spec.seed = 3000 + n;
    spec.threads = scale.threads;
    sweep.points.push_back(
        {static_cast<double>(n), run_scenario(spec).summary});
  }
  print_sweep("L4.1: binary-tree ranking time from a single leader", sweep);
  report_sweep(report, "tree_ranking", "array", sweep);
  std::cout << "paper: expected O(n) (slope ~1)\n";

  // Per-level completion times at one size: level d should cost ~ 2^d.
  const std::uint32_t kN = scale.smoke ? 64 : 1024;
  const auto params = OptimalSilentParams::standard(kN);
  OptimalSilentSSR proto(params);
  Simulation<OptimalSilentSSR> sim(
      proto, optimal_silent_inits().agents(proto, "single-leader", 0), 777);
  std::uint32_t levels = 0;
  while ((1u << (levels + 1)) <= kN) ++levels;
  std::vector<double> level_done(levels + 1, -1);
  std::uint32_t settled = 1;
  while (settled < kN) {
    sim.step();
    if (sim.interactions() % (kN / 4) != 0) continue;  // sample sparsely
    std::vector<char> present(kN + 1, 0);
    for (const auto& s : sim.states())
      if (s.role == OsRole::Settled && s.rank >= 1 && s.rank <= kN)
        present[s.rank] = 1;
    settled = 0;
    for (std::uint32_t r = 1; r <= kN; ++r) settled += present[r];
    for (std::uint32_t d = 0; d <= levels; ++d) {
      if (level_done[d] >= 0) continue;
      bool complete = true;
      for (std::uint32_t r = 1u << d; r < std::min(kN + 1, 1u << (d + 1));
           ++r)
        if (!present[r]) {
          complete = false;
          break;
        }
      if (complete) level_done[d] = sim.parallel_time();
    }
  }
  Table t({"tree level d", "ranks", "completion time", "delta from prev"});
  double prev = 0;
  for (std::uint32_t d = 0; d <= levels; ++d) {
    if (level_done[d] < 0) level_done[d] = sim.parallel_time();
    t.add_row({std::to_string(d),
               std::to_string(1u << d) + ".." +
                   std::to_string(std::min(kN, (1u << (d + 1)) - 1)),
               fmt(level_done[d], 1), fmt(level_done[d] - prev, 1)});
    prev = level_done[d];
  }
  t.print();
  std::cout << "paper (Lemma 4.1 proof): level d costs O(2^d) time; the "
               "deltas should grow with the level size, summing to O(n)\n";
}

// ISSUE 5 acceptance leg: single-run wall clock vs shard count on the
// timer-heavy dormant countdown window (the regime where the paper's O(n)
// bound needs huge n and one run used to be single-threaded). Each cell is
// one ScenarioSpec: strategy=sharded, shards=k, until=ptime — the metric is
// per-trial *run* wall seconds, construction excluded. The >= 3x acceptance
// criterion (8 shards vs 1 shard) is a thread-scaling claim, so the
// PASS/FAIL verdict is only issued on hosts with >= 8 hardware threads;
// fewer-core hosts record the curve for the trend and say so.
void experiment_sharded_scaling(const BenchScale& scale,
                                BenchReport& report) {
  const std::uint32_t n =
      scale.smoke ? 65'536 : (scale.full ? 10'000'000 : 1'000'000);
  const double window = scale.smoke ? 0.1 : 0.25;
  const std::uint32_t trials = scale.smoke ? 1 : 3;
  std::cout << "\n== ISSUE 5: sharded single-run scaling (dormant-mix "
               "window, n = "
            << n << ", ptime " << window << ", " << trials
            << " trial(s) per cell) ==\n";
  Table t({"shards", "run s (mean)", "speedup vs 1 shard", "interactions"});
  double base = 0.0;
  double best_at_8 = 0.0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = "dormant-mix";
    spec.engine = "batch";
    spec.strategy = "sharded";
    spec.shards = shards;
    spec.until = "ptime";
    spec.horizon_ptime = window;
    spec.n = n;
    spec.trials = trials;
    spec.seed = 4242;
    spec.threads = scale.threads;
    const ScenarioResult r = run_scenario(spec);
    if (shards == 1) base = r.summary.mean;
    const double speedup = base / r.summary.mean;
    if (shards == 8) best_at_8 = speedup;
    t.add_row({std::to_string(shards), fmt(r.summary.mean, 4),
               fmt(speedup, 2), fmt(r.interactions_mean, 0)});
    report.add()
        .set("experiment", "sharded_scaling")
        .set("backend", "batch")
        .set("strategy", "sharded")
        .set("shards", static_cast<std::uint64_t>(shards))
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("run_seconds_mean", r.summary.mean)
        .set("speedup_vs_1_shard", speedup)
        .set("wall_seconds", r.wall_seconds);
  }
  t.print();
  const unsigned hw = std::thread::hardware_concurrency();
  if (scale.smoke || scale.quick) {
    std::cout << "(acceptance check skipped under --smoke/--quick; run "
                 "without flags on an >= 8-core host)\n";
  } else if (hw >= 8) {
    std::cout << (best_at_8 >= 3.0 ? "PASS" : "FAIL")
              << ": 8-shard speedup " << fmt(best_at_8, 2)
              << "x (acceptance: >= 3x on >= 8 hardware threads)\n";
  } else {
    std::cout << "acceptance (>= 3x at 8 shards) needs >= 8 hardware "
                 "threads; this host has "
              << hw << " — speedups recorded for the trend only (measured "
              << fmt(best_at_8, 2) << "x at 8 shards)\n";
  }
}

// ISSUE 6 acceptance leg: the dense-regime cliff. A uniform-random start
// occupies ~min(n, |state space|) distinct codes, so count-based engines
// pay per-round costs proportional to occupancy and fall off a cliff that
// the agent array never sees; a dormant-mix start collapses onto a handful
// of codes and is the count engine's best case. With engine=auto the
// strategy controller probes trial-0 occupancy and routes each side to its
// winning engine — acceptance is the dense cell landing within 3x of the
// sparse cell's wall clock over the same ptime window on the same
// controller (both cells simulate exactly ptime * n interactions).
// Both cells run in well under a second even at n = 1e6 (run wall excludes
// construction), so the acceptance size is used at every scale — the
// --smoke baseline records the real verdict, not a proxy.
void experiment_dense_cliff(const BenchScale& scale, BenchReport& report) {
  const std::uint32_t n = 1'000'000;
  const double window = 0.25;
  const std::uint32_t trials = scale.smoke ? 1 : 3;
  std::cout << "\n== ISSUE 6: dense-regime cliff (engine=auto, n = " << n
            << ", ptime " << window << ", " << trials
            << " trial(s) per cell) ==\n";
  Table t({"init", "engine (controller)", "run s (mean)", "ns/interaction"});
  double sparse = 0.0;
  double dense = 0.0;
  for (const char* init : {"dormant-mix", "uniform-random"}) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = init;
    spec.engine = "auto";
    spec.until = "ptime";
    spec.horizon_ptime = window;
    spec.n = n;
    spec.trials = trials;
    spec.seed = 2026;
    spec.threads = scale.threads;
    const ScenarioResult r = run_scenario(spec);
    const double per_interaction_ns =
        r.summary.mean / std::max(1.0, r.interactions_mean) * 1e9;
    const std::string engine_desc =
        (r.engine_arm.empty() ? "" : "auto:") +
        (r.backend == "batch" ? r.backend + "/" + r.strategy : r.backend);
    t.add_row({init, engine_desc, fmt(r.summary.mean, 4),
               fmt(per_interaction_ns, 1)});
    if (std::string(init) == "dormant-mix")
      sparse = r.summary.mean;
    else
      dense = r.summary.mean;
    report_scenario(report, "dense_cliff", r)
        .set("ns_per_interaction", per_interaction_ns);
  }
  t.print();
  const double ratio = sparse > 0 ? dense / sparse : 0.0;
  report.add()
      .set("experiment", "dense_cliff_verdict")
      .set("n", static_cast<std::uint64_t>(n))
      .set("ptime_window", window)
      .set("dense_over_sparse_ratio", ratio)
      .set("pass", static_cast<std::uint64_t>(ratio <= 3.0 ? 1 : 0));
  std::cout << (ratio <= 3.0 ? "PASS" : "FAIL")
            << ": uniform-random wall clock is " << fmt(ratio, 2)
            << "x dormant-mix over the same window (acceptance: <= 3x "
               "with engine=auto at n = 1e6)\n";
}

// ISSUE 7 acceptance leg: the approximate tau tier. Two cells:
//
//   * Matched 0.25-ptime window at n = 1e6 (dormant-mix): strategy=tau vs
//     the best exact batch strategy over the SAME fixed interaction budget.
//     Acceptance is tau >= 10x faster; the ratio is recorded as
//     `tau_speedup` on the tau record. Every tau record is stamped
//     approximate + tau_eps by report_scenario, which is what keeps it out
//     of bench_compare's strict drift gate.
//   * Full drain to certified silence at moderate n — the tau engine's
//     silent() is exact (structured active weight == 0), so until=silent
//     terminates on a real certificate, not a heuristic.
//
// Why the silence cell is NOT run at n = 1e6: the dormant conveyor forces
// ~Dmax = 8n parallel time (every agent counts its own timer down), i.e.
// ~8e12 scheduler interactions at n = 1e6. The tau engine compresses that
// into >= ptime / kMaxLeapPtime ~ 125k macro-leaps — wall clock bounded by
// leap count rather than interactions, minutes instead of centuries, but
// still far too slow for a bench cell; the window cell above measures the
// same regime at bench-friendly cost, and the printed note keeps the bound
// honest.
void experiment_tau_tier(const BenchScale& scale, BenchReport& report) {
  const std::uint32_t n = 1'000'000;
  const double window = 0.25;
  const std::uint32_t trials = scale.smoke ? 1 : 3;
  std::cout << "\n== ISSUE 7: approximate tau tier (dormant-mix window, n = "
            << n << ", ptime " << window << ", " << trials
            << " trial(s) per cell) ==\n";
  auto run_window = [&](const char* strategy) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = "dormant-mix";
    spec.engine = "batch";
    spec.strategy = strategy;
    spec.until = "ptime";
    spec.horizon_ptime = window;
    spec.n = n;
    spec.trials = trials;
    spec.seed = 7100;
    spec.threads = scale.threads;
    return run_scenario(spec);
  };
  Table t({"strategy", "run s (mean)", "approximate", "speedup vs best exact"});
  double best_exact = 0.0;
  std::string best_name;
  for (const char* strategy : {"multinomial", "geometric_skip"}) {
    const ScenarioResult r = run_window(strategy);
    report_scenario(report, "tau_window", r);
    t.add_row({strategy, fmt(r.summary.mean, 5), "no", "-"});
    if (best_name.empty() || r.summary.mean < best_exact) {
      best_exact = r.summary.mean;
      best_name = strategy;
    }
  }
  const ScenarioResult tau = run_window("tau");
  const double tau_speedup =
      tau.summary.mean > 0 ? best_exact / tau.summary.mean : 0.0;
  report_scenario(report, "tau_window", tau).set("tau_speedup", tau_speedup);
  t.add_row({"tau", fmt(tau.summary.mean, 5), "YES", fmt(tau_speedup, 1)});
  t.print();
  std::cout << (tau_speedup >= 10.0 ? "PASS" : "FAIL") << ": tau is "
            << fmt(tau_speedup, 1) << "x the best exact strategy ("
            << best_name << ") over the same " << window
            << "-ptime window (acceptance: >= 10x at n = 1e6)\n";

  // Full drain to certified silence: tau reaches the until=silent
  // certificate at moderate n (exact-comparable sizes; the CI-overlap
  // harness in tests/approx_error_test.cpp checks the distribution).
  const std::uint32_t sn = scale.smoke ? 256 : (scale.full ? 2048 : 512);
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "dormant-mix";
  spec.engine = "batch";
  spec.strategy = "tau";
  spec.until = "silent";
  spec.n = sn;
  spec.trials = scale.trials(sn <= 512 ? 10 : 4);
  spec.seed = 7200;
  spec.threads = scale.threads;
  const ScenarioResult drain = run_scenario(spec);
  report_scenario(report, "tau_silence", drain);
  std::cout << "tau to certified silence at n = " << sn << ": "
            << fmt(drain.summary.mean, 1) << " +- "
            << fmt(drain.summary.ci95, 1) << " parallel time over "
            << drain.trials << " trials (approximate: "
            << (drain.approximate ? "yes" : "NO (BUG)")
            << ", eps = " << drain.tau_eps << ")\n"
            << "note: n = 1e6 silence sits behind the dormant conveyor "
               "(~8n parallel time, ~8e12 interactions; tau covers it in "
               "~1.25e5 macro-leaps) — measured here through the window "
               "cell instead\n";
}

// Lemma 4.2: probability that an awakening configuration has one leader.
void experiment_awakening_leader(const BenchScale& scale,
                                 BenchReport& report) {
  std::cout << "\n== L4.2: unique leader at awakening (Dmax = 8n) ==\n";
  Table t({"n", "trials", "unique-leader fraction"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto trials = scale.trials(40);
    std::uint32_t unique = 0;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const auto params = OptimalSilentParams::standard(n);
      OptimalSilentSSR proto(params);
      auto init = optimal_silent_config(params, OsAdversary::kAllPropagating,
                                        derive_seed(4000 + n, i));
      Simulation<OptimalSilentSSR> sim(proto, std::move(init),
                                       derive_seed(5000 + n, i));
      while (sim.counters().resets_executed == 0 &&
             sim.interactions() < (1ull << 30))
        sim.step();
      std::uint32_t leaders = 0;
      for (const auto& s : sim.states()) {
        if (s.role == OsRole::Resetting && s.leader) ++leaders;
        if (s.role == OsRole::Settled && s.rank == 1) ++leaders;
      }
      if (leaders == 1) ++unique;
    }
    t.add_row({std::to_string(n), std::to_string(trials),
               fmt(static_cast<double>(unique) / trials, 3)});
    report.add()
        .set("experiment", "awakening_unique_leader")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("unique_fraction", static_cast<double>(unique) / trials);
  }
  t.print();
  std::cout << "paper: constant probability (epochs repeat on failure); the "
               "fraction should be a healthy constant\n";
}

void BM_OptimalSilentInteraction(benchmark::State& state) {
  const auto params = OptimalSilentParams::standard(1024);
  OptimalSilentSSR proto(params);
  OptimalSilentSSR::Counters counters;
  Rng rng(1);
  auto states = optimal_silent_config(params, OsAdversary::kUniformRandom, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    proto.interact(states[i % states.size()],
                   states[(i + 7) % states.size()], rng, counters);
    ++i;
  }
}
BENCHMARK(BM_OptimalSilentInteraction);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  ppsim::BenchReport report("optimal_silent");
  std::cout << "=== bench_optimal_silent: Protocols 3-4 / Theorem 4.3 "
               "(Table 1 row 2) ===\n";
  ppsim::experiment_stabilization(scale, report);
  ppsim::experiment_sharded_scaling(scale, report);
  ppsim::experiment_dense_cliff(scale, report);
  ppsim::experiment_tau_tier(scale, report);
  ppsim::experiment_tree_ranking(scale, report);
  ppsim::experiment_awakening_leader(scale, report);
  const std::string path = report.write();
  if (!path.empty()) std::cout << "\nmachine-readable results: " << path << "\n";
  if (scale.micro) {
    int bench_argc = 1;
    benchmark::Initialize(&bench_argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
