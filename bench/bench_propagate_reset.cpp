// Experiment group L3.2 / L3.3 / T3.4 / C3.5 (see DESIGN.md): phase timing
// of Propagate-Reset (Protocol 2) in isolation.
//
//   trigger -> fully propagating   O(log n)            (Lemma 3.2)
//   fully propagating -> dormant   O(log n + Rmax)     (Lemma 3.3)
//   dormant -> awakening           O(Dmax)             (Theorem 3.4)
//   awakening -> fully computing   O(log n) epidemic
//   arbitrary debris -> computing  O(log n + Dmax)     (Corollary 3.5)
//
// The at-scale strategy face-off, the epidemic residual drain and the
// debris drain are thin wrappers over the Scenario API (reset-process /
// one-way-epidemic registry entries, `trigger-one` / `residual-16` /
// `mid-reset-mix` initial conditions); the per-phase microscopes keep
// custom agent-array loops — they census phases per interaction.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/cli.h"
#include "core/simulation.h"
#include "init/reset_init.h"
#include "reset/reset_process.h"

namespace ppsim {
namespace {

struct PhaseTimes {
  double fully_propagating = -1;
  double fully_dormant = -1;
  double awakening = -1;
  double all_computing = -1;
  bool clean = false;  // one computing agent, rest dormant, at awakening
};

PhaseTimes run_phases(std::uint32_t n, std::uint32_t rmax, std::uint32_t dmax,
                      std::uint64_t seed) {
  ResetProcess proto(n, rmax, dmax);
  Simulation<ResetProcess> sim(
      proto, reset_process_inits().agents(proto, "trigger-one", 0), seed);
  PhaseTimes out;
  while (sim.interactions() < (1ull << 32)) {
    sim.step();
    std::uint32_t propagating = 0, dormant = 0, computing = 0;
    for (const auto& s : sim.states()) {
      if (!s.resetting)
        ++computing;
      else if (s.resetcount > 0)
        ++propagating;
      else
        ++dormant;
    }
    if (out.fully_propagating < 0 && propagating == n)
      out.fully_propagating = sim.parallel_time();
    if (out.fully_dormant < 0 && dormant == n)
      out.fully_dormant = sim.parallel_time();
    if (out.awakening < 0 && sim.counters().resets_executed > 0) {
      out.awakening = sim.parallel_time();
      out.clean = computing == 1 && propagating == 0;
    }
    if (computing == n) {
      out.all_computing = sim.parallel_time();
      break;
    }
  }
  return out;
}

void experiment_phases(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T3.4: phase completion times (Rmax = 8 ln n, "
               "Dmax = 4 Rmax) ==\n";
  Table t({"n", "Rmax", "Dmax", "fully-propag.", "fully-dormant", "awakening",
           "all-computing", "clean frac", "awk/Dmax"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024, 4096})) {
    const auto rmax =
        static_cast<std::uint32_t>(std::ceil(8 * std::log(n))) + 4;
    const std::uint32_t dmax = 4 * rmax;
    const auto trials = scale.trials(n <= 1024 ? 20 : 8);
    std::vector<double> prop, dorm, awk, comp;
    int clean = 0;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const PhaseTimes p = run_phases(n, rmax, dmax, derive_seed(n, i));
      prop.push_back(p.fully_propagating);
      dorm.push_back(p.fully_dormant);
      awk.push_back(p.awakening);
      comp.push_back(p.all_computing);
      if (p.clean) ++clean;
    }
    t.add_row({std::to_string(n), std::to_string(rmax), std::to_string(dmax),
               fmt(summarize(prop).mean, 1), fmt(summarize(dorm).mean, 1),
               fmt(summarize(awk).mean, 1), fmt(summarize(comp).mean, 1),
               fmt(static_cast<double>(clean) / trials, 2),
               fmt(summarize(awk).mean / dmax, 3)});
    report.add()
        .set("experiment", "phases")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(comp).mean)
        .set("awakening_time", summarize(awk).mean);
  }
  t.print();
  std::cout << "paper: propagation O(log n) (Lemma 3.2); dormancy O(log n + "
               "Rmax) (Lemma 3.3); awakening ~ Dmax/2 agent-interactions "
               "(Theorem 3.4, awk/Dmax ~ 0.4-0.5); clean frac ~ 1\n";
}

void experiment_scaling_in_dmax(const BenchScale& scale) {
  std::cout << "\n== T3.4: awakening time is linear in Dmax ==\n";
  constexpr std::uint32_t kN = 512;
  const auto rmax =
      static_cast<std::uint32_t>(std::ceil(8 * std::log(kN))) + 4;
  Table t({"Dmax", "mean awakening time", "awakening/Dmax"});
  for (std::uint32_t factor : scale.sizes({2, 4, 8, 16, 32})) {
    const std::uint32_t dmax = factor * rmax;
    const auto trials = scale.trials(12);
    std::vector<double> awk;
    for (std::uint32_t i = 0; i < trials; ++i)
      awk.push_back(run_phases(kN, rmax, dmax, derive_seed(9000 + factor, i))
                        .awakening);
    const Summary s = summarize(awk);
    t.add_row({std::to_string(dmax), fmt(s.mean, 1),
               fmt(s.mean / dmax, 3)});
  }
  t.print();
  std::cout << "the ratio settles near 0.5: delaytimer counts per-agent "
               "interactions, ~2 per parallel-time unit\n";
}

// Corollary 3.5: arbitrary Resetting debris drains quickly. One
// ScenarioSpec per n: the `mid-reset-mix` initial condition on the agent
// array, run until drained.
void experiment_debris(const BenchScale& scale) {
  std::cout << "\n== C3.5: drain time from arbitrary Resetting debris "
               "(scenario: reset-process / mid-reset-mix / drained) ==\n";
  Table t({"n", "mean drain time", "p95", "(log n + Dmax) scale"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto rmax =
        static_cast<std::uint32_t>(std::ceil(8 * std::log(n))) + 4;
    ScenarioSpec spec;
    spec.protocol = "reset-process";
    spec.init = "mid-reset-mix";
    spec.engine = "array";
    spec.trials = scale.trials(20);
    spec.n = n;
    spec.seed = 100 + n;
    spec.threads = scale.threads;
    const ScenarioResult r = run_scenario(spec);
    t.add_row({std::to_string(n), fmt(r.summary.mean, 1),
               fmt(r.summary.p95, 1), fmt(std::log(n) + 4.0 * rmax, 1)});
  }
  t.print();
}

// ISSUE 3: the Section 3 phase experiments past n = 10^6, on the batched
// backend (ResetProcess is enumerable). A full trigger -> drain cycle is
// Theta(n (log n + Dmax)) interactions, nearly all of them effective
// (resetcount waves and delaytimer countdowns tick on every contact) — the
// multinomial batch strategy's regime; auto additionally drops to the
// unkeyed-passive geometric skip while the wave is still small and most
// pairs are Computing-Computing. Head-to-head wall clock per strategy via
// one ScenarioSpec per cell, with the auto wall-vs-n slope recorded (~1:
// near-constant amortized cost per interaction).
void experiment_phases_at_scale(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T3.4 at scale (batched backend): trigger -> all "
               "computing, Rmax = 8 ln n, Dmax = 4 Rmax ==\n";
  std::vector<std::uint32_t> sizes = scale.sizes({100'000, 1'000'000});
  if (scale.full) sizes.push_back(10'000'000);
  Table t({"n", "strategy", "wall s", "drain time", "interactions"});
  std::vector<double> ns, auto_walls;
  for (std::uint32_t n : sizes) {
    for (const char* strategy : {"geometric_skip", "multinomial", "auto"}) {
      // The pure geometric skip simulates every candidate pair one by one;
      // past 10^6 that is the slow baseline the batch strategies replace —
      // skip it there outside --full to keep the default run short.
      if (strategy == std::string("geometric_skip") && n > 1'000'000 &&
          !scale.full)
        continue;
      ScenarioSpec spec;
      spec.protocol = "reset-process";
      spec.init = "trigger-one";
      spec.engine = "batch";
      spec.strategy = strategy;
      spec.n = n;
      spec.seed = 373 + n;
      const ScenarioResult r = run_scenario(spec);
      t.add_row({std::to_string(n), strategy, fmt(r.wall_seconds, 2),
                 fmt(r.summary.mean, 1), fmt_sci(r.interactions_mean)});
      report.add()
          .set("experiment", "phases_at_scale")
          .set("backend", "batch")
          .set("strategy", strategy)
          .set("n", static_cast<std::uint64_t>(n))
          .set("parallel_time", r.summary.mean)
          .set("interactions",
               static_cast<std::uint64_t>(r.interactions_mean))
          .set("wall_seconds", r.wall_seconds);
      if (strategy == std::string("auto")) {
        ns.push_back(static_cast<double>(n));
        auto_walls.push_back(r.wall_seconds);
      }
    }
  }
  t.print();
  if (ns.size() >= 2) {
    const LinearFit f = fit_power_law(ns, auto_walls);
    std::cout << "auto-strategy wall ~ n^" << fmt(f.slope, 2)
              << " (R^2 = " << fmt(f.r2, 3)
              << "); drain time is Theta(Dmax) = Theta(log n) as in T3.4\n";
    report.add()
        .set("experiment", "phases_at_scale_slope")
        .set("backend", "batch")
        .set("strategy", "auto")
        .set("slope", f.slope)
        .set("r2", f.r2);
  }
}

// The unkeyed passive structure on a one-way epidemic: residual-infection
// drain (all but 16 agents already infected, the `residual-16` initial
// condition). Completion needs ~n H_16 / 2 more interactions, but almost
// all pairs are infected-infected (null by the passive structure), so the
// batched engine simulates only O(16 log 16) candidate pairs between
// geometric jumps; the agent array must grind through every interaction.
// Two ScenarioSpecs per n, differing only in the engine field.
void experiment_epidemic_residual(const BenchScale& scale,
                                  BenchReport& report) {
  std::cout << "\n== one-way epidemic, residual drain (residual-16): "
               "unkeyed passive skip vs agent array ==\n";
  std::vector<std::uint32_t> sizes = scale.sizes({1'000'000, 10'000'000});
  if (scale.full) sizes.push_back(100'000'000);
  Table t({"n", "array s", "batch s", "speedup", "batch interactions"});
  for (std::uint32_t n : sizes) {
    ScenarioSpec spec;
    spec.protocol = "one-way-epidemic";
    spec.init = "residual-16";
    spec.n = n;
    spec.seed = 571 + n;

    spec.engine = "array";
    const ScenarioResult array_r = run_scenario(spec);
    spec.engine = "batch";
    spec.strategy = "geometric_skip";
    const ScenarioResult batch_r = run_scenario(spec);

    const double speedup = array_r.wall_seconds / batch_r.wall_seconds;
    t.add_row({std::to_string(n), fmt(array_r.wall_seconds, 3),
               fmt(batch_r.wall_seconds, 5), fmt(speedup, 0),
               fmt_sci(batch_r.interactions_mean)});
    for (const char* backend : {"array", "batch"}) {
      const bool is_batch = backend == std::string("batch");
      BenchRecord& rec = report.add();
      rec.set("experiment", "epidemic_residual")
          .set("backend", backend)
          .set("n", static_cast<std::uint64_t>(n))
          .set("wall_seconds",
               is_batch ? batch_r.wall_seconds : array_r.wall_seconds);
      if (is_batch)
        rec.set("strategy", "geometric_skip")
            .set("interactions",
                 static_cast<std::uint64_t>(batch_r.interactions_mean))
            .set("speedup_vs_array", speedup);
    }
  }
  t.print();
  std::cout << "the batched engine simulates O(k log k) candidate pairs "
               "regardless of n; the array pays ~n H_k / 2 steps\n";
}

void BM_PropagateResetStep(benchmark::State& state) {
  ResetProcess proto(1024, 60, 240);
  ResetProcess::Counters counters;
  Rng rng(1);
  ResetProcess::State a, b;
  proto.trigger(a);
  for (auto _ : state) {
    proto.interact(a, b, rng, counters);
    if (!a.resetting) proto.trigger(a);
  }
}
BENCHMARK(BM_PropagateResetStep);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_propagate_reset: Protocol 2 / Section 3 ===\n";
  ppsim::BenchReport report("propagate_reset");
  ppsim::experiment_phases(scale, report);
  ppsim::experiment_phases_at_scale(scale, report);
  ppsim::experiment_epidemic_residual(scale, report);
  ppsim::experiment_scaling_in_dmax(scale);
  ppsim::experiment_debris(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  if (scale.micro) {
    int bench_argc = 1;
    benchmark::Initialize(&bench_argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
