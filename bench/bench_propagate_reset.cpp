// Experiment group L3.2 / L3.3 / T3.4 / C3.5 (see DESIGN.md): phase timing
// of Propagate-Reset (Protocol 2) in isolation.
//
//   trigger -> fully propagating   O(log n)            (Lemma 3.2)
//   fully propagating -> dormant   O(log n + Rmax)     (Lemma 3.3)
//   dormant -> awakening           O(Dmax)             (Theorem 3.4)
//   awakening -> fully computing   O(log n) epidemic
//   arbitrary debris -> computing  O(log n + Dmax)     (Corollary 3.5)
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/experiments.h"
#include "core/batch_simulation.h"
#include "core/engine.h"
#include "core/simulation.h"
#include "processes/epidemic.h"
#include "reset/reset_process.h"

namespace ppsim {
namespace {

struct PhaseTimes {
  double fully_propagating = -1;
  double fully_dormant = -1;
  double awakening = -1;
  double all_computing = -1;
  bool clean = false;  // one computing agent, rest dormant, at awakening
};

PhaseTimes run_phases(std::uint32_t n, std::uint32_t rmax, std::uint32_t dmax,
                      std::uint64_t seed) {
  ResetProcess proto(n, rmax, dmax);
  std::vector<ResetProcess::State> init(n);
  proto.trigger(init[0]);
  Simulation<ResetProcess> sim(proto, std::move(init), seed);
  PhaseTimes out;
  while (sim.interactions() < (1ull << 32)) {
    sim.step();
    std::uint32_t propagating = 0, dormant = 0, computing = 0;
    for (const auto& s : sim.states()) {
      if (!s.resetting)
        ++computing;
      else if (s.resetcount > 0)
        ++propagating;
      else
        ++dormant;
    }
    if (out.fully_propagating < 0 && propagating == n)
      out.fully_propagating = sim.parallel_time();
    if (out.fully_dormant < 0 && dormant == n)
      out.fully_dormant = sim.parallel_time();
    if (out.awakening < 0 && sim.counters().resets_executed > 0) {
      out.awakening = sim.parallel_time();
      out.clean = computing == 1 && propagating == 0;
    }
    if (computing == n) {
      out.all_computing = sim.parallel_time();
      break;
    }
  }
  return out;
}

void experiment_phases(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T3.4: phase completion times (Rmax = 8 ln n, "
               "Dmax = 4 Rmax) ==\n";
  Table t({"n", "Rmax", "Dmax", "fully-propag.", "fully-dormant", "awakening",
           "all-computing", "clean frac", "awk/Dmax"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024, 4096})) {
    const auto rmax =
        static_cast<std::uint32_t>(std::ceil(8 * std::log(n))) + 4;
    const std::uint32_t dmax = 4 * rmax;
    const auto trials = scale.trials(n <= 1024 ? 20 : 8);
    std::vector<double> prop, dorm, awk, comp;
    int clean = 0;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const PhaseTimes p = run_phases(n, rmax, dmax, derive_seed(n, i));
      prop.push_back(p.fully_propagating);
      dorm.push_back(p.fully_dormant);
      awk.push_back(p.awakening);
      comp.push_back(p.all_computing);
      if (p.clean) ++clean;
    }
    t.add_row({std::to_string(n), std::to_string(rmax), std::to_string(dmax),
               fmt(summarize(prop).mean, 1), fmt(summarize(dorm).mean, 1),
               fmt(summarize(awk).mean, 1), fmt(summarize(comp).mean, 1),
               fmt(static_cast<double>(clean) / trials, 2),
               fmt(summarize(awk).mean / dmax, 3)});
    report.add()
        .set("experiment", "phases")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(comp).mean)
        .set("awakening_time", summarize(awk).mean);
  }
  t.print();
  std::cout << "paper: propagation O(log n) (Lemma 3.2); dormancy O(log n + "
               "Rmax) (Lemma 3.3); awakening ~ Dmax/2 agent-interactions "
               "(Theorem 3.4, awk/Dmax ~ 0.4-0.5); clean frac ~ 1\n";
}

void experiment_scaling_in_dmax(const BenchScale& scale) {
  std::cout << "\n== T3.4: awakening time is linear in Dmax ==\n";
  constexpr std::uint32_t kN = 512;
  const auto rmax =
      static_cast<std::uint32_t>(std::ceil(8 * std::log(kN))) + 4;
  Table t({"Dmax", "mean awakening time", "awakening/Dmax"});
  for (std::uint32_t factor : scale.sizes({2, 4, 8, 16, 32})) {
    const std::uint32_t dmax = factor * rmax;
    const auto trials = scale.trials(12);
    std::vector<double> awk;
    for (std::uint32_t i = 0; i < trials; ++i)
      awk.push_back(run_phases(kN, rmax, dmax, derive_seed(9000 + factor, i))
                        .awakening);
    const Summary s = summarize(awk);
    t.add_row({std::to_string(dmax), fmt(s.mean, 1),
               fmt(s.mean / dmax, 3)});
  }
  t.print();
  std::cout << "the ratio settles near 0.5: delaytimer counts per-agent "
               "interactions, ~2 per parallel-time unit\n";
}

// Corollary 3.5: arbitrary Resetting debris drains quickly.
void experiment_debris(const BenchScale& scale) {
  std::cout << "\n== C3.5: drain time from arbitrary Resetting debris ==\n";
  Table t({"n", "mean drain time", "p95", "(log n + Dmax) scale"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto rmax =
        static_cast<std::uint32_t>(std::ceil(8 * std::log(n))) + 4;
    const std::uint32_t dmax = 4 * rmax;
    const auto trials = scale.trials(20);
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i) {
      Rng gen(derive_seed(100 + n, i));
      ResetProcess proto(n, rmax, dmax);
      std::vector<ResetProcess::State> init(n);
      for (auto& s : init) {
        if (gen.coin()) continue;
        s.resetting = true;
        s.resetcount = static_cast<std::uint32_t>(gen.below(rmax));
        s.delaytimer = static_cast<std::uint32_t>(gen.below(dmax + 1));
      }
      Simulation<ResetProcess> sim(proto, std::move(init),
                                   derive_seed(200 + n, i));
      while (sim.interactions() < (1ull << 30)) {
        sim.step();
        bool all = true;
        for (const auto& s : sim.states())
          if (s.resetting) {
            all = false;
            break;
          }
        if (all) break;
      }
      xs.push_back(sim.parallel_time());
    }
    const Summary s = summarize(xs);
    t.add_row({std::to_string(n), fmt(s.mean, 1), fmt(s.p95, 1),
               fmt(std::log(n) + dmax, 1)});
  }
  t.print();
}

// ISSUE 3: the Section 3 phase experiments past n = 10^6, on the batched
// backend (ResetProcess is now enumerable). A full trigger -> drain cycle
// is Theta(n (log n + Dmax)) interactions, nearly all of them effective
// (resetcount waves and delaytimer countdowns tick on every contact) — the
// multinomial batch strategy's regime; kAuto additionally drops to the
// unkeyed-passive geometric skip while the wave is still small and most
// pairs are Computing-Computing. Head-to-head wall clock per strategy, with
// the kAuto wall-vs-n slope recorded (~1: near-constant amortized cost per
// interaction, i.e. the sweep scales like the interaction count itself).
void experiment_phases_at_scale(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T3.4 at scale (batched backend): trigger -> all "
               "computing, Rmax = 8 ln n, Dmax = 4 Rmax ==\n";
  std::vector<std::uint32_t> sizes = scale.sizes({100'000, 1'000'000});
  if (scale.full) sizes.push_back(10'000'000);
  const BatchStrategy strategies[] = {BatchStrategy::kGeometricSkip,
                                      BatchStrategy::kMultinomial,
                                      BatchStrategy::kAuto};
  Table t({"n", "strategy", "wall s", "drain time", "interactions",
           "eff. events", "mn. batches"});
  std::vector<double> ns, auto_walls;
  for (std::uint32_t n : sizes) {
    const auto rmax =
        static_cast<std::uint32_t>(std::ceil(8 * std::log(n))) + 4;
    const std::uint32_t dmax = 4 * rmax;
    ResetProcess proto(n, rmax, dmax);
    std::vector<std::uint64_t> counts(proto.num_states(), 0);
    ResetProcess::State triggered;
    proto.trigger(triggered);
    counts[0] = n - 1;
    counts[proto.encode(triggered)] = 1;
    for (BatchStrategy strategy : strategies) {
      // The pure geometric skip simulates every candidate pair one by one;
      // past 10^6 that is the slow baseline the batch strategies replace —
      // skip it there outside --full to keep the default run short.
      if (strategy == BatchStrategy::kGeometricSkip && n > 1'000'000 &&
          !scale.full)
        continue;
      BatchSimulation<ResetProcess> sim(proto, counts, derive_seed(373, n),
                                        strategy);
      const WallTimer timer;
      sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 50);
      const double wall = timer.seconds();
      t.add_row({std::to_string(n), to_string(strategy), fmt(wall, 2),
                 fmt(sim.parallel_time(), 1),
                 std::to_string(sim.interactions()),
                 std::to_string(sim.stats().effective),
                 std::to_string(sim.stats().multinomial_batches)});
      report.add()
          .set("experiment", "phases_at_scale")
          .set("backend", "batch")
          .set("strategy", to_string(strategy))
          .set("n", static_cast<std::uint64_t>(n))
          .set("parallel_time", sim.parallel_time())
          .set("interactions", sim.interactions())
          .set("wall_seconds", wall);
      if (strategy == BatchStrategy::kAuto) {
        ns.push_back(static_cast<double>(n));
        auto_walls.push_back(wall);
      }
    }
  }
  t.print();
  if (ns.size() >= 2) {
    const LinearFit f = fit_power_law(ns, auto_walls);
    std::cout << "auto-strategy wall ~ n^" << fmt(f.slope, 2)
              << " (R^2 = " << fmt(f.r2, 3)
              << "); drain time is Theta(Dmax) = Theta(log n) as in T3.4\n";
    report.add()
        .set("experiment", "phases_at_scale_slope")
        .set("backend", "batch")
        .set("strategy", "auto")
        .set("slope", f.slope)
        .set("r2", f.r2);
  }
}

// The unkeyed passive structure on a one-way epidemic: residual-infection
// drain (all but k agents already infected). Completion needs ~n H_k / 2
// more interactions, but almost all pairs are infected-infected (null by
// the passive structure), so the batched engine simulates only the O(k)
// candidate pairs between geometric jumps; the agent array must grind
// through every interaction.
void experiment_epidemic_residual(const BenchScale& scale,
                                  BenchReport& report) {
  std::cout << "\n== one-way epidemic, residual drain (k = 16 susceptible "
               "left): unkeyed passive skip vs agent array ==\n";
  std::vector<std::uint32_t> sizes = scale.sizes({1'000'000, 10'000'000});
  if (scale.full) sizes.push_back(100'000'000);
  const std::uint32_t k = 16;
  Table t({"n", "array s", "batch s", "speedup", "interactions",
           "batch eff. events"});
  for (std::uint32_t n : sizes) {
    OneWayEpidemic proto(n);

    const WallTimer t_array;
    std::vector<OneWayEpidemic::State> init(n);
    for (std::uint32_t i = k; i < n; ++i) init[i].infected = true;
    Simulation<OneWayEpidemic> array_sim(proto, std::move(init),
                                         derive_seed(571, n));
    for (;;) {
      // Check the k candidate agents every 1024 steps: O(k/1024) amortized
      // bookkeeping per interaction, <= 1024 interactions of overshoot on a
      // ~n H_k / 2 run — the per-step cost stays the honest baseline.
      array_sim.run(1024);
      std::uint32_t susceptible = 0;
      for (std::uint32_t i = 0; i < k; ++i)
        if (!array_sim.states()[i].infected) ++susceptible;
      if (susceptible == 0) break;
    }
    const double array_s = t_array.seconds();

    const WallTimer t_batch;
    BatchSimulation<OneWayEpidemic> batch_sim(
        proto, one_way_epidemic_counts(n, n - k), derive_seed(572, n));
    batch_sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 62);
    const double batch_s = t_batch.seconds();

    t.add_row({std::to_string(n), fmt(array_s, 3), fmt(batch_s, 5),
               fmt(array_s / batch_s, 0),
               std::to_string(batch_sim.interactions()),
               std::to_string(batch_sim.stats().effective)});
    for (const char* backend : {"array", "batch"}) {
      BenchRecord& rec = report.add();
      rec.set("experiment", "epidemic_residual")
          .set("backend", backend)
          .set("n", static_cast<std::uint64_t>(n))
          .set("wall_seconds",
               backend == std::string("array") ? array_s : batch_s);
      if (backend == std::string("batch"))
        rec.set("strategy", "geometric_skip")
            .set("interactions", batch_sim.interactions())
            .set("speedup_vs_array", array_s / batch_s);
    }
  }
  t.print();
  std::cout << "the batched engine simulates O(k log k) candidate pairs "
               "regardless of n; the array pays ~n H_k / 2 steps\n";
}

void BM_PropagateResetStep(benchmark::State& state) {
  ResetProcess proto(1024, 60, 240);
  ResetProcess::Counters counters;
  Rng rng(1);
  ResetProcess::State a, b;
  proto.trigger(a);
  for (auto _ : state) {
    proto.interact(a, b, rng, counters);
    if (!a.resetting) proto.trigger(a);
  }
}
BENCHMARK(BM_PropagateResetStep);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_propagate_reset: Protocol 2 / Section 3 ===\n";
  ppsim::BenchReport report("propagate_reset");
  ppsim::experiment_phases(scale, report);
  ppsim::experiment_phases_at_scale(scale, report);
  ppsim::experiment_epidemic_residual(scale, report);
  ppsim::experiment_scaling_in_dmax(scale);
  ppsim::experiment_debris(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
