// Experiment group L3.2 / L3.3 / T3.4 / C3.5 (see DESIGN.md): phase timing
// of Propagate-Reset (Protocol 2) in isolation.
//
//   trigger -> fully propagating   O(log n)            (Lemma 3.2)
//   fully propagating -> dormant   O(log n + Rmax)     (Lemma 3.3)
//   dormant -> awakening           O(Dmax)             (Theorem 3.4)
//   awakening -> fully computing   O(log n) epidemic
//   arbitrary debris -> computing  O(log n + Dmax)     (Corollary 3.5)
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "reset/reset_process.h"

namespace ppsim {
namespace {

struct PhaseTimes {
  double fully_propagating = -1;
  double fully_dormant = -1;
  double awakening = -1;
  double all_computing = -1;
  bool clean = false;  // one computing agent, rest dormant, at awakening
};

PhaseTimes run_phases(std::uint32_t n, std::uint32_t rmax, std::uint32_t dmax,
                      std::uint64_t seed) {
  ResetProcess proto(n, rmax, dmax);
  std::vector<ResetProcess::State> init(n);
  proto.trigger(init[0]);
  Simulation<ResetProcess> sim(proto, std::move(init), seed);
  PhaseTimes out;
  while (sim.interactions() < (1ull << 32)) {
    sim.step();
    std::uint32_t propagating = 0, dormant = 0, computing = 0;
    for (const auto& s : sim.states()) {
      if (!s.resetting)
        ++computing;
      else if (s.resetcount > 0)
        ++propagating;
      else
        ++dormant;
    }
    if (out.fully_propagating < 0 && propagating == n)
      out.fully_propagating = sim.parallel_time();
    if (out.fully_dormant < 0 && dormant == n)
      out.fully_dormant = sim.parallel_time();
    if (out.awakening < 0 && sim.counters().resets_executed > 0) {
      out.awakening = sim.parallel_time();
      out.clean = computing == 1 && propagating == 0;
    }
    if (computing == n) {
      out.all_computing = sim.parallel_time();
      break;
    }
  }
  return out;
}

void experiment_phases(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T3.4: phase completion times (Rmax = 8 ln n, "
               "Dmax = 4 Rmax) ==\n";
  Table t({"n", "Rmax", "Dmax", "fully-propag.", "fully-dormant", "awakening",
           "all-computing", "clean frac", "awk/Dmax"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024, 4096})) {
    const auto rmax =
        static_cast<std::uint32_t>(std::ceil(8 * std::log(n))) + 4;
    const std::uint32_t dmax = 4 * rmax;
    const auto trials = scale.trials(n <= 1024 ? 20 : 8);
    std::vector<double> prop, dorm, awk, comp;
    int clean = 0;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const PhaseTimes p = run_phases(n, rmax, dmax, derive_seed(n, i));
      prop.push_back(p.fully_propagating);
      dorm.push_back(p.fully_dormant);
      awk.push_back(p.awakening);
      comp.push_back(p.all_computing);
      if (p.clean) ++clean;
    }
    t.add_row({std::to_string(n), std::to_string(rmax), std::to_string(dmax),
               fmt(summarize(prop).mean, 1), fmt(summarize(dorm).mean, 1),
               fmt(summarize(awk).mean, 1), fmt(summarize(comp).mean, 1),
               fmt(static_cast<double>(clean) / trials, 2),
               fmt(summarize(awk).mean / dmax, 3)});
    report.add()
        .set("experiment", "phases")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(comp).mean)
        .set("awakening_time", summarize(awk).mean);
  }
  t.print();
  std::cout << "paper: propagation O(log n) (Lemma 3.2); dormancy O(log n + "
               "Rmax) (Lemma 3.3); awakening ~ Dmax/2 agent-interactions "
               "(Theorem 3.4, awk/Dmax ~ 0.4-0.5); clean frac ~ 1\n";
}

void experiment_scaling_in_dmax(const BenchScale& scale) {
  std::cout << "\n== T3.4: awakening time is linear in Dmax ==\n";
  constexpr std::uint32_t kN = 512;
  const auto rmax =
      static_cast<std::uint32_t>(std::ceil(8 * std::log(kN))) + 4;
  Table t({"Dmax", "mean awakening time", "awakening/Dmax"});
  for (std::uint32_t factor : scale.sizes({2, 4, 8, 16, 32})) {
    const std::uint32_t dmax = factor * rmax;
    const auto trials = scale.trials(12);
    std::vector<double> awk;
    for (std::uint32_t i = 0; i < trials; ++i)
      awk.push_back(run_phases(kN, rmax, dmax, derive_seed(9000 + factor, i))
                        .awakening);
    const Summary s = summarize(awk);
    t.add_row({std::to_string(dmax), fmt(s.mean, 1),
               fmt(s.mean / dmax, 3)});
  }
  t.print();
  std::cout << "the ratio settles near 0.5: delaytimer counts per-agent "
               "interactions, ~2 per parallel-time unit\n";
}

// Corollary 3.5: arbitrary Resetting debris drains quickly.
void experiment_debris(const BenchScale& scale) {
  std::cout << "\n== C3.5: drain time from arbitrary Resetting debris ==\n";
  Table t({"n", "mean drain time", "p95", "(log n + Dmax) scale"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto rmax =
        static_cast<std::uint32_t>(std::ceil(8 * std::log(n))) + 4;
    const std::uint32_t dmax = 4 * rmax;
    const auto trials = scale.trials(20);
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i) {
      Rng gen(derive_seed(100 + n, i));
      ResetProcess proto(n, rmax, dmax);
      std::vector<ResetProcess::State> init(n);
      for (auto& s : init) {
        if (gen.coin()) continue;
        s.resetting = true;
        s.resetcount = static_cast<std::uint32_t>(gen.below(rmax));
        s.delaytimer = static_cast<std::uint32_t>(gen.below(dmax + 1));
      }
      Simulation<ResetProcess> sim(proto, std::move(init),
                                   derive_seed(200 + n, i));
      while (sim.interactions() < (1ull << 30)) {
        sim.step();
        bool all = true;
        for (const auto& s : sim.states())
          if (s.resetting) {
            all = false;
            break;
          }
        if (all) break;
      }
      xs.push_back(sim.parallel_time());
    }
    const Summary s = summarize(xs);
    t.add_row({std::to_string(n), fmt(s.mean, 1), fmt(s.p95, 1),
               fmt(std::log(n) + dmax, 1)});
  }
  t.print();
}

void BM_PropagateResetStep(benchmark::State& state) {
  ResetProcess proto(1024, 60, 240);
  ResetProcess::Counters counters;
  Rng rng(1);
  ResetProcess::State a, b;
  proto.trigger(a);
  for (auto _ : state) {
    proto.interact(a, b, rng, counters);
    if (!a.resetting) proto.trigger(a);
  }
}
BENCHMARK(BM_PropagateResetStep);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_propagate_reset: Protocol 2 / Section 3 ===\n";
  ppsim::BenchReport report("propagate_reset");
  ppsim::experiment_phases(scale, report);
  ppsim::experiment_scaling_in_dmax(scale);
  ppsim::experiment_debris(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
