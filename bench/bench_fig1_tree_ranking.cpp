// Experiment F1 (see DESIGN.md): Figure 1 — the binary-tree rank assignment
// of Optimal-Silent-SSR.
//
// Reproduces the figure's exact scenario (n = 12, eight settled agents with
// ranks {1,2,3,4,5,8,9,10}, four unsettled agents, pending ranks
// {6,7,11,12}), renders the rank tree as ASCII before and after, and then
// measures the level-by-level assignment dynamics behind Lemma 4.1.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "analysis/scenarios.h"
#include "core/simulation.h"
#include "protocols/optimal_silent.h"

namespace ppsim {
namespace {

using State = OptimalSilentSSR::State;

State settled(std::uint32_t rank, std::uint8_t children) {
  State s;
  s.role = OsRole::Settled;
  s.rank = rank;
  s.children = children;
  return s;
}

void render_tree(const std::vector<State>& states, std::uint32_t n) {
  std::vector<char> present(n + 1, 0);
  for (const auto& s : states)
    if (s.role == OsRole::Settled && s.rank >= 1 && s.rank <= n)
      present[s.rank] = 1;
  std::cout << "rank tree ([r] = settled, (r) = pending):\n";
  std::uint32_t level_start = 1;
  while (level_start <= n) {
    std::cout << "  ";
    for (std::uint32_t r = level_start;
         r < std::min<std::uint64_t>(n + 1, 2ull * level_start); ++r) {
      if (present[r])
        std::cout << "[" << r << "] ";
      else
        std::cout << "(" << r << ") ";
    }
    std::cout << "\n";
    level_start *= 2;
  }
}

void figure1_scenario(BenchReport& report) {
  constexpr std::uint32_t kN = 12;
  const auto params = OptimalSilentParams::standard(kN);
  OptimalSilentSSR proto(params);
  std::vector<State> init(kN);
  init[0] = settled(1, 2);
  init[1] = settled(2, 2);
  init[2] = settled(3, 0);  // 6, 7 pending
  init[3] = settled(4, 2);
  init[4] = settled(5, 1);  // 11 pending
  init[5] = settled(8, 0);
  init[6] = settled(9, 0);
  init[7] = settled(10, 0);
  for (std::uint32_t i = 8; i < kN; ++i) {
    init[i].role = OsRole::Unsettled;
    init[i].errorcount = params.emax;
  }

  std::cout << "\n== F1: Figure 1's configuration (n = 12, 8 settled, 4 "
               "unsettled) ==\n";
  render_tree(init, kN);

  Simulation<OptimalSilentSSR> sim(proto, std::move(init), 2021);
  while (true) {
    sim.step();
    bool done = true;
    std::vector<char> present(kN + 1, 0);
    for (const auto& s : sim.states())
      if (s.role == OsRole::Settled) present[s.rank] = 1;
    for (std::uint32_t r = 1; r <= kN; ++r)
      if (!present[r]) done = false;
    if (done) break;
  }
  std::cout << "\nafter " << fmt(sim.parallel_time(), 1)
            << " parallel time units, all ranks are assigned:\n";
  render_tree(sim.states(), kN);
  std::cout << "resets triggered: "
            << sim.counters().collision_triggers +
                   sim.counters().timeout_triggers
            << " (expected 0: the figure's configuration completes "
               "directly)\n";
  report.add()
      .set("experiment", "figure1_scenario")
      .set("backend", "array")
      .set("n", static_cast<std::uint64_t>(kN))
      .set("parallel_time", sim.parallel_time())
      .set("interactions", sim.interactions());
}

// Lemma 4.1 dynamics: settled count over time from a single leader; each
// doubling of the settled population should take roughly constant time
// proportional to the level size (O(2^d) for level d).
//
// The total time-to-ranked is the registered (optimal-silent,
// single-leader, ranked) scenario cell, so it runs through run_scenario;
// only the intermediate quartile crossings — which no ScenarioSpec stop
// condition expresses — keep a hand-rolled loop, stopping at 75%.
void level_dynamics(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== F1/L4.1: settled-population growth from one leader ==\n";
  Table t({"n", "time to 25% settled", "to 50%", "to 75%", "to 100%",
           "total/n"});
  for (std::uint32_t n : scale.sizes({256, 1024, 4096})) {
    const auto trials = scale.trials(10);
    std::vector<double> q25, q50, q75;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const auto params = OptimalSilentParams::standard(n);
      OptimalSilentSSR proto(params);
      std::vector<State> init(n);
      init[0] = settled(1, 0);
      for (std::uint32_t j = 1; j < n; ++j) {
        init[j].role = OsRole::Unsettled;
        init[j].errorcount = params.emax;
      }
      Simulation<OptimalSilentSSR> sim(proto, std::move(init),
                                       derive_seed(n, i));
      double t25 = -1, t50 = -1, t75 = -1;
      while (t75 < 0) {
        sim.step();
        if (sim.interactions() % 64 != 0) continue;
        std::uint32_t settled_count = 0;
        for (const auto& s : sim.states())
          if (s.role == OsRole::Settled) ++settled_count;
        const double frac = static_cast<double>(settled_count) / n;
        if (t25 < 0 && frac >= 0.25) t25 = sim.parallel_time();
        if (t50 < 0 && frac >= 0.50) t50 = sim.parallel_time();
        if (t75 < 0 && frac >= 0.75) t75 = sim.parallel_time();
      }
      q25.push_back(t25);
      q50.push_back(t50);
      q75.push_back(t75);
    }
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = "single-leader";
    spec.until = "ranked";
    spec.engine = "array";
    spec.n = n;
    spec.trials = trials;
    spec.seed = n;
    const ScenarioResult total = run_scenario(spec);
    t.add_row({std::to_string(n), fmt(summarize(q25).mean, 1),
               fmt(summarize(q50).mean, 1), fmt(summarize(q75).mean, 1),
               fmt(total.summary.mean, 1), fmt(total.summary.mean / n, 3)});
    report.add()
        .set("experiment", "level_dynamics")
        .set("backend", total.backend)
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", total.summary.mean);
  }
  t.print();
  std::cout << "paper (Lemma 4.1): total time O(n) (total/n ~ const); the "
               "last quarter costs the most (the deepest, largest levels)\n";
}

void BM_RankAssignmentFullRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto params = OptimalSilentParams::standard(n);
    OptimalSilentSSR proto(params);
    std::vector<State> init(n);
    init[0] = settled(1, 0);
    for (std::uint32_t j = 1; j < n; ++j) {
      init[j].role = OsRole::Unsettled;
      init[j].errorcount = params.emax;
    }
    RunOptions opts;
    opts.max_interactions = 1ull << 30;
    benchmark::DoNotOptimize(
        run_until_ranked(proto, std::move(init), seed++, opts));
  }
}
BENCHMARK(BM_RankAssignmentFullRun)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_fig1_tree_ranking: Figure 1 / Lemma 4.1 ===\n";
  ppsim::BenchReport report("fig1_tree_ranking");
  ppsim::figure1_scenario(report);
  ppsim::level_dynamics(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
