// Experiments T5.7 / L5.6 / L5.4-5.5 (see DESIGN.md): Sublinear-Time-SSR.
//
//   * collision-detection latency (Lemma 5.6): from a planted duplicate
//     name, some agent detects the collision in O(TH) time, i.e.
//     O(H n^{1/(H+1)}) for constant H and O(log n) for H = Theta(log n)
//   * full stabilization (Theorem 5.7): detection + reset + renaming + roll
//     call; sweeps over H show the time/space tradeoff of Table 1 rows 3-4
//   * state growth: measured history-tree sizes (live and logical nodes) as
//     the state-complexity proxy for the exp(O(n^H log n)) bound
//   * safety (Lemmas 5.4/5.5): zero false collisions over long horizons
//   * count-form abstraction: the sublinear-*-count quotient protocols on
//     the batch engine — detection latency up to n = 10^6 and the measured
//     array-vs-count wall-clock speedup (records stamped abstracted=true)
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/experiments.h"
#include "analysis/scenarios.h"
#include "core/simulation.h"
#include "init/sublinear_init.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

std::string h_label(std::uint32_t h) {
  return h == 0 ? "Theta(log n)" : std::to_string(h);
}

// h = 0 encodes the H = Theta(log n) configuration. Used only by the
// experiments that stay hand-rolled below (state growth, safety, the
// google-benchmark micro): they inspect individual agent states and
// detector counters, which the Scenario API's count-based summaries
// anonymize away.
SublinearParams params_for(std::uint32_t n, std::uint32_t h) {
  return h == 0 ? SublinearParams::log_time(n)
                : SublinearParams::constant_h(n, h);
}

// One ScenarioSpec per (H, n, init, until) cell: h = 0 selects the
// registered H = Theta(log n) entry, h >= 1 the constant-H entry with the
// param.h override; the registry owns the horizon/tail formulas that the
// hand-rolled loops here used to duplicate.
ScenarioSpec sublinear_spec(const BenchScale& scale, std::uint32_t h,
                            std::uint32_t n, const char* init,
                            const char* until, std::uint32_t trials,
                            std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = h == 0 ? "sublinear-hlog" : "sublinear-h1";
  if (h >= 2) spec.params.push_back({"h", std::to_string(h)});
  spec.init = init;
  spec.until = until;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  spec.threads = scale.threads;
  return spec;
}

// Count-form cell: the same (init, until) semantics as sublinear_spec, but
// on the sublinear-*-count quotient protocols riding the batch engine.
// Records emitted through report_scenario carry the abstracted=true honesty
// stamp from the ScenarioResult.
ScenarioSpec sublinear_count_spec(const BenchScale& scale, std::uint32_t h,
                                  std::uint32_t n, const char* init,
                                  const char* until, std::uint32_t trials,
                                  std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = h == 0 ? "sublinear-hlog-count" : "sublinear-h1-count";
  spec.engine = "batch";
  spec.init = init;
  spec.until = until;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  spec.threads = scale.threads;
  return spec;
}

void experiment_count_abstraction(const BenchScale& scale,
                                  BenchReport& report) {
  std::cout << "\n== count-form abstraction: Table 1 rows 3-4 on the batch "
               "engine ==\n";
  // Detection latency on the quotient protocols. The n = 10^6 cell for
  // H = Theta(log n) runs in every mode (appended even under --smoke):
  // reaching it is the abstraction's purpose — the agent-array form would
  // need 10^6 heap-allocated history trees, the count form a polynomial
  // count vector.
  struct Row {
    std::uint32_t h;
    std::vector<std::uint32_t> sizes;
  };
  std::vector<Row> rows = {
      {0u, scale.sizes({4096, 65536, 1000000})},
      {1u, scale.sizes({1024, 16384, 262144})},
  };
  for (Row& row : rows) {
    if (row.h == 0 && row.sizes.back() != 1000000u)
      row.sizes.push_back(1000000u);
    Sweep sweep;
    for (std::uint32_t n : row.sizes) {
      const ScenarioSpec spec = sublinear_count_spec(
          scale, row.h, n, "duplicate-names", "detected",
          scale.trials(n <= 65536 ? 6 : 3), 11000 + 3ull * n + row.h);
      const ScenarioResult r = run_scenario(spec);
      report_scenario(report,
                      row.h == 0 ? "count_detection_latency_hlog"
                                 : "count_detection_latency_h1",
                      r);
      sweep.points.push_back({static_cast<double>(n), r.summary});
    }
    print_sweep("count-form detection latency, H = " + h_label(row.h), sweep,
                "detect time");
    std::cout << "note: direction-2 witness detection is dropped by the "
                 "quotient, so these latencies sit a small constant above "
                 "the agent-array entry (records are stamped abstracted)\n";
  }

  // Array-vs-count head-to-head: the identical (init, until, n, seed,
  // trials) cell on both forms, wall-clock ratio recorded as the measured
  // speedup the abstraction buys at the largest n the agent-array form
  // still runs comfortably.
  {
    const std::uint32_t n = 4096;
    const std::uint32_t trials = scale.trials(3);
    const ScenarioResult ra = run_scenario(sublinear_spec(
        scale, 0, n, "duplicate-names", "detected", trials, 12000));
    const ScenarioResult rc = run_scenario(sublinear_count_spec(
        scale, 0, n, "duplicate-names", "detected", trials, 12000));
    report_scenario(report, "count_vs_array_hlog", ra);
    report_scenario(report, "count_vs_array_hlog", rc);
    const double speedup =
        rc.wall_seconds > 0 ? ra.wall_seconds / rc.wall_seconds : 0.0;
    report.add()
        .set("experiment", "count_vs_array_hlog_speedup")
        .set("backend", "paired")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("array_wall_seconds", ra.wall_seconds)
        .set("count_wall_seconds", rc.wall_seconds)
        .set("wall_speedup", speedup);
    std::cout << "\narray wall " << fmt(ra.wall_seconds, 3) << " s vs count "
              << fmt(rc.wall_seconds, 3) << " s at n = " << n << ": "
              << fmt(speedup, 1) << "x\n";
  }
}

void experiment_detection_latency(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== L5.6: collision-detection latency (indirect only) ==\n";
  // direct_check off: only the indirect (tree-path) mechanism of
  // Protocol 7 is measured.
  for (std::uint32_t h : {1u, 2u, 3u}) {
    Sweep sweep;
    std::vector<std::uint32_t> sizes =
        h == 1 ? scale.sizes({64, 128, 256, 512, 1024})
               : scale.sizes({64, 128, 256, 512});
    for (std::uint32_t n : sizes) {
      ScenarioSpec spec =
          sublinear_spec(scale, h, n, "duplicate-names", "detected",
                         scale.trials(n <= 256 ? 12 : 6), 6000 + n * 7 + h);
      spec.params.push_back({"direct_check", "0"});
      spec.max_interactions = 1ull << 34;
      sweep.points.push_back(
          {static_cast<double>(n), run_scenario(spec).summary});
    }
    print_sweep("detection latency, H = " + h_label(h), sweep,
                "detect time");
    report_sweep(report, "detection_latency_h" + std::to_string(h), "array",
                 sweep, "detect_time");
    const double expect = 1.0 / (h + 1);
    std::cout << "paper: O(H n^{1/(H+1)}) -> exponent ~" << fmt(expect, 3)
              << "\n";
  }
  // H = Theta(log n): latency should grow like log n, i.e. exponent -> 0.
  {
    Sweep sweep;
    Table t({"n", "mean detect time", "p95", "ln n", "mean/ln(n)"});
    for (std::uint32_t n : scale.sizes({16, 32, 64, 128})) {
      ScenarioSpec spec =
          sublinear_spec(scale, 0, n, "duplicate-names", "detected",
                         scale.trials(n <= 64 ? 10 : 6), 7000 + n);
      spec.params.push_back({"direct_check", "0"});
      spec.max_interactions = 1ull << 34;
      const Summary s = run_scenario(spec).summary;
      sweep.points.push_back({static_cast<double>(n), s});
      t.add_row({std::to_string(n), fmt(s.mean, 2), fmt(s.p95, 2),
                 fmt(std::log(n), 2), fmt(s.mean / std::log(n), 3)});
    }
    std::cout << "\n== detection latency, H = Theta(log n) ==\n";
    t.print();
    report_sweep(report, "detection_latency_hlog", "array", sweep,
                 "detect_time");
    if (sweep.points.size() >= 2) {
      const LinearFit f = sweep.fit();
      std::cout << "log-log fit: time ~ n^" << fmt(f.slope, 3)
                << "  (paper: O(log n), exponent -> 0; mean/ln(n) ~ const)\n";
    }
  }
}

void experiment_stabilization(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T5.7: full stabilization from adversarial starts ==\n";
  struct Config {
    std::uint32_t h;
    std::vector<std::uint32_t> sizes;
  };
  // H = 1 runs cheaply at large n (materialized depth-1 grafts); H >= 2
  // keeps full lazy history (memory grows with the run), so sizes stay
  // moderate — see DESIGN.md's memory-model note.
  const std::vector<Config> configs = {
      {1u, scale.sizes({32, 64, 128, 256, 512})},
      {2u, scale.sizes({32, 64, 128})},
      // H = Theta(log n): per-interaction detection walks the
      // quasi-exponential live tree, so end-to-end runs stay tiny; the
      // detection-latency sweep above covers larger n for this row.
      {0u, scale.sizes({8, 16})},
  };
  for (const auto& cfg : configs) {
    for (const char* kind : {"duplicate-names", "uniform-random"}) {
      Sweep sweep;
      for (std::uint32_t n : cfg.sizes) {
        const ScenarioSpec spec = sublinear_spec(
            scale, cfg.h, n, kind, "ranked",
            scale.trials(n <= 128 ? 4 : 3), 8000 + n * 13 + cfg.h);
        sweep.points.push_back(
            {static_cast<double>(n), run_scenario(spec).summary});
      }
      print_sweep("stabilization, H = " + h_label(cfg.h) + ", start = " +
                      std::string(kind),
                  sweep);
      report_sweep(report,
                   "stabilization_h" + std::to_string(cfg.h) + "_" + kind,
                   "array", sweep);
      if (cfg.h != 0) {
        std::cout << "paper: Theta(H n^{1/(H+1)}) -> exponent ~"
                  << fmt(1.0 / (cfg.h + 1), 3) << "\n";
      } else {
        std::cout << "paper: Theta(log n) -> additive growth per doubling\n";
      }
      std::cout << "note: totals include the reset pipeline's ~Dmax/2 + "
                   "Theta(log n) additive overhead, which dominates at "
                   "laptop n; the H-dependent component is isolated in the "
                   "detection-latency tables above\n";
    }
  }
}

void experiment_state_growth(const BenchScale& scale) {
  std::cout << "\n== T5.7 state proxy: history-tree sizes at steady state "
               "==\n";
  Table t({"H", "n", "mean live nodes", "max live", "mean logical nodes",
           "DFS nodes/call", "worst DFS call"});
  struct Probe {
    std::uint32_t h;
    std::uint32_t n;
  };
  const std::vector<Probe> probes =
      scale.smoke ? std::vector<Probe>{{1, 64}, {0, 16}}
                  : std::vector<Probe>{{1, 64}, {1, 256}, {1, 1024}, {2, 64},
                                       {2, 128}, {3, 64}, {0, 16}};
  for (const auto& probe : probes) {
    const auto p = params_for(probe.n, probe.h);
    SublinearTimeSSR proto(p);
    auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 9000);
    Simulation<SublinearTimeSSR> sim(proto, std::move(init), 9001);
    std::uint64_t warmup = std::min<std::uint64_t>(
        400000, static_cast<std::uint64_t>(probe.n) * (4ull * p.th + 50));
    if (scale.smoke) warmup /= 10;
    sim.run(warmup);
    double live_sum = 0, logical_sum = 0;
    std::uint64_t live_max = 0;
    // Counting caps: the live/logical portion of an H = Theta(log n) tree is
    // the quasi-exponential object itself — enumerate only to bounded depth.
    const std::uint32_t live_cap = std::min(p.depth_h, 8u);
    for (const auto& s : sim.states()) {
      const auto live = live_node_count(s.tree, live_cap);
      live_sum += static_cast<double>(live);
      live_max = std::max(live_max, live);
      logical_sum += static_cast<double>(
          logical_node_count(s.tree, std::min(p.depth_h, 4u)));
    }
    const auto& ds = sim.counters().detector;
      t.add_row({h_label(probe.h), std::to_string(probe.n),
               fmt(live_sum / probe.n, 1), std::to_string(live_max),
               fmt(logical_sum / probe.n, 1),
               fmt(static_cast<double>(ds.nodes_visited) /
                       std::max<std::uint64_t>(1, ds.calls),
                   1),
               std::to_string(ds.max_nodes_one_call)});
  }
  t.print();
  std::cout << "paper: the tree field needs exp(O(n^H) log n) states; live "
               "sizes grow with H and n (logical counts capped at depth 6)\n";
}

void experiment_safety(const BenchScale& scale) {
  std::cout << "\n== L5.4/5.5 safety: false-collision rate after a correct "
               "configuration ==\n";
  Table t({"H", "n", "interactions", "collision triggers", "ghost triggers",
           "resets"});
  for (std::uint32_t h : {1u, 2u, 0u}) {
    const std::uint32_t n = h == 1 ? 64 : (h == 2 ? 32 : 16);
    const auto p = params_for(n, h);
    SublinearTimeSSR proto(p);
    auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 10000 + h);
    Simulation<SublinearTimeSSR> sim(proto, std::move(init), 10001 + h);
    const std::uint64_t horizon = h == 1 ? 400000ull * scale.trials(1)
                                         : (h == 2 ? 150000ull : 20000ull);
    sim.run(scale.smoke ? horizon / 10 : horizon);
    const auto& c = sim.counters();
    t.add_row({h_label(h), std::to_string(n),
               std::to_string(sim.interactions()),
               std::to_string(c.collision_triggers),
               std::to_string(c.ghost_triggers),
               std::to_string(c.resets_executed)});
  }
  t.print();
  std::cout << "paper: a uniquely-named configuration reached after a clean "
               "reset never produces a false collision (all zeros)\n";
}

void BM_SublinearInteractionSteadyState(benchmark::State& state) {
  const auto h = static_cast<std::uint32_t>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const auto p = params_for(n, h);
  SublinearTimeSSR proto(p);
  auto states = sublinear_config(p, SlAdversary::kCorrectRanked, 42);
  Simulation<SublinearTimeSSR> sim(proto, std::move(states), 43);
  sim.run(20000);  // reach tree steady state
  for (auto _ : state) sim.step();
  state.counters["dfs_nodes_per_call"] =
      static_cast<double>(sim.counters().detector.nodes_visited) /
      std::max<std::uint64_t>(1, sim.counters().detector.calls);
}
BENCHMARK(BM_SublinearInteractionSteadyState)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({0, 16});

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_sublinear: Protocols 5-8 / Theorem 5.7 "
               "(Table 1 rows 3-4) ===\n";
  ppsim::BenchReport report("sublinear");
  ppsim::experiment_detection_latency(scale, report);
  ppsim::experiment_count_abstraction(scale, report);
  ppsim::experiment_stabilization(scale, report);
  ppsim::experiment_state_growth(scale);
  ppsim::experiment_safety(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
