// Experiments T5.7 / L5.6 / L5.4-5.5 (see DESIGN.md): Sublinear-Time-SSR.
//
//   * collision-detection latency (Lemma 5.6): from a planted duplicate
//     name, some agent detects the collision in O(TH) time, i.e.
//     O(H n^{1/(H+1)}) for constant H and O(log n) for H = Theta(log n)
//   * full stabilization (Theorem 5.7): detection + reset + renaming + roll
//     call; sweeps over H show the time/space tradeoff of Table 1 rows 3-4
//   * state growth: measured history-tree sizes (live and logical nodes) as
//     the state-complexity proxy for the exp(O(n^H log n)) bound
//   * safety (Lemmas 5.4/5.5): zero false collisions over long horizons
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/adversary.h"
#include "analysis/bench_report.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "protocols/leader.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

SublinearParams params_for(std::uint32_t n, std::uint32_t h) {
  // h = 0 encodes the H = Theta(log n) configuration.
  return h == 0 ? SublinearParams::log_time(n)
                : SublinearParams::constant_h(n, h);
}

std::string h_label(std::uint32_t h) {
  return h == 0 ? "Theta(log n)" : std::to_string(h);
}

// Parallel time until the planted duplicate pair is first detected
// (collision trigger), with the direct-check rule disabled so only the
// indirect (tree-path) mechanism of Protocol 7 is measured.
double detection_latency(std::uint32_t n, std::uint32_t h,
                         std::uint64_t seed) {
  auto p = params_for(n, h);
  p.direct_check = false;
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kDuplicateNames, seed);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init),
                                   derive_seed(seed, 1));
  while (sim.counters().collision_triggers == 0) {
    sim.step();
    if (sim.interactions() > (1ull << 34)) return -1;
  }
  return sim.parallel_time();
}

void experiment_detection_latency(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== L5.6: collision-detection latency (indirect only) ==\n";
  for (std::uint32_t h : {1u, 2u, 3u}) {
    Sweep sweep;
    std::vector<std::uint32_t> sizes =
        h == 1 ? scale.sizes({64, 128, 256, 512, 1024})
               : scale.sizes({64, 128, 256, 512});
    for (std::uint32_t n : sizes) {
      const auto trials = scale.trials(n <= 256 ? 12 : 6);
      std::vector<double> xs;
      for (std::uint32_t i = 0; i < trials; ++i)
        xs.push_back(detection_latency(n, h, derive_seed(6000 + n * 7 + h, i)));
      sweep.points.push_back({static_cast<double>(n), summarize(xs)});
    }
    print_sweep("detection latency, H = " + h_label(h), sweep,
                "detect time");
    report_sweep(report, "detection_latency_h" + std::to_string(h), "array",
                 sweep, "detect_time");
    const double expect = 1.0 / (h + 1);
    std::cout << "paper: O(H n^{1/(H+1)}) -> exponent ~" << fmt(expect, 3)
              << "\n";
  }
  // H = Theta(log n): latency should grow like log n, i.e. exponent -> 0.
  {
    Sweep sweep;
    Table t({"n", "mean detect time", "p95", "ln n", "mean/ln(n)"});
    for (std::uint32_t n : scale.sizes({16, 32, 64, 128})) {
      const auto trials = scale.trials(n <= 64 ? 10 : 6);
      std::vector<double> xs;
      for (std::uint32_t i = 0; i < trials; ++i)
        xs.push_back(detection_latency(n, 0, derive_seed(7000 + n, i)));
      const Summary s = summarize(xs);
      sweep.points.push_back({static_cast<double>(n), s});
      t.add_row({std::to_string(n), fmt(s.mean, 2), fmt(s.p95, 2),
                 fmt(std::log(n), 2), fmt(s.mean / std::log(n), 3)});
    }
    std::cout << "\n== detection latency, H = Theta(log n) ==\n";
    t.print();
    report_sweep(report, "detection_latency_hlog", "array", sweep,
                 "detect_time");
    if (sweep.points.size() >= 2) {
      const LinearFit f = sweep.fit();
      std::cout << "log-log fit: time ~ n^" << fmt(f.slope, 3)
                << "  (paper: O(log n), exponent -> 0; mean/ln(n) ~ const)\n";
    }
  }
}

double stabilization_time(std::uint32_t n, std::uint32_t h,
                          SlAdversary kind, std::uint64_t seed) {
  const auto p = params_for(n, h);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, kind, seed);
  RunOptions opts;
  const std::uint64_t per_epoch = static_cast<std::uint64_t>(p.n) *
                                  (6ull * p.th + 6ull * p.dmax + 400);
  opts.max_interactions = 120ull * per_epoch + (1ull << 22);
  opts.tail_ptime = 0.75 * p.th + 10;
  const RunResult r =
      run_until_ranked(proto, std::move(init), derive_seed(seed, 2), opts);
  return r.stabilized ? r.stabilization_ptime : -1;
}

void experiment_stabilization(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T5.7: full stabilization from adversarial starts ==\n";
  struct Config {
    std::uint32_t h;
    std::vector<std::uint32_t> sizes;
  };
  // H = 1 runs cheaply at large n (materialized depth-1 grafts); H >= 2
  // keeps full lazy history (memory grows with the run), so sizes stay
  // moderate — see DESIGN.md's memory-model note.
  const std::vector<Config> configs = {
      {1u, scale.sizes({32, 64, 128, 256, 512})},
      {2u, scale.sizes({32, 64, 128})},
      // H = Theta(log n): per-interaction detection walks the
      // quasi-exponential live tree, so end-to-end runs stay tiny; the
      // detection-latency sweep above covers larger n for this row.
      {0u, scale.sizes({8, 16})},
  };
  for (const auto& cfg : configs) {
    for (auto kind :
         {SlAdversary::kDuplicateNames, SlAdversary::kUniformRandom}) {
      Sweep sweep;
      for (std::uint32_t n : cfg.sizes) {
        const auto trials = scale.trials(n <= 128 ? 4 : 3);
        std::vector<double> xs;
        for (std::uint32_t i = 0; i < trials; ++i)
          xs.push_back(stabilization_time(
              n, cfg.h, kind, derive_seed(8000 + n * 13 + cfg.h, i)));
        sweep.points.push_back({static_cast<double>(n), summarize(xs)});
      }
      print_sweep("stabilization, H = " + h_label(cfg.h) + ", start = " +
                      to_string(kind),
                  sweep);
      report_sweep(report,
                   "stabilization_h" + std::to_string(cfg.h) + "_" +
                       to_string(kind),
                   "array", sweep);
      if (cfg.h != 0) {
        std::cout << "paper: Theta(H n^{1/(H+1)}) -> exponent ~"
                  << fmt(1.0 / (cfg.h + 1), 3) << "\n";
      } else {
        std::cout << "paper: Theta(log n) -> additive growth per doubling\n";
      }
      std::cout << "note: totals include the reset pipeline's ~Dmax/2 + "
                   "Theta(log n) additive overhead, which dominates at "
                   "laptop n; the H-dependent component is isolated in the "
                   "detection-latency tables above\n";
    }
  }
}

void experiment_state_growth(const BenchScale& scale) {
  std::cout << "\n== T5.7 state proxy: history-tree sizes at steady state "
               "==\n";
  Table t({"H", "n", "mean live nodes", "max live", "mean logical nodes",
           "DFS nodes/call", "worst DFS call"});
  struct Probe {
    std::uint32_t h;
    std::uint32_t n;
  };
  const std::vector<Probe> probes =
      scale.smoke ? std::vector<Probe>{{1, 64}, {0, 16}}
                  : std::vector<Probe>{{1, 64}, {1, 256}, {1, 1024}, {2, 64},
                                       {2, 128}, {3, 64}, {0, 16}};
  for (const auto& probe : probes) {
    const auto p = params_for(probe.n, probe.h);
    SublinearTimeSSR proto(p);
    auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 9000);
    Simulation<SublinearTimeSSR> sim(proto, std::move(init), 9001);
    std::uint64_t warmup = std::min<std::uint64_t>(
        400000, static_cast<std::uint64_t>(probe.n) * (4ull * p.th + 50));
    if (scale.smoke) warmup /= 10;
    sim.run(warmup);
    double live_sum = 0, logical_sum = 0;
    std::uint64_t live_max = 0;
    // Counting caps: the live/logical portion of an H = Theta(log n) tree is
    // the quasi-exponential object itself — enumerate only to bounded depth.
    const std::uint32_t live_cap = std::min(p.depth_h, 8u);
    for (const auto& s : sim.states()) {
      const auto live = live_node_count(s.tree, live_cap);
      live_sum += static_cast<double>(live);
      live_max = std::max(live_max, live);
      logical_sum += static_cast<double>(
          logical_node_count(s.tree, std::min(p.depth_h, 4u)));
    }
    const auto& ds = sim.counters().detector;
      t.add_row({h_label(probe.h), std::to_string(probe.n),
               fmt(live_sum / probe.n, 1), std::to_string(live_max),
               fmt(logical_sum / probe.n, 1),
               fmt(static_cast<double>(ds.nodes_visited) /
                       std::max<std::uint64_t>(1, ds.calls),
                   1),
               std::to_string(ds.max_nodes_one_call)});
  }
  t.print();
  std::cout << "paper: the tree field needs exp(O(n^H) log n) states; live "
               "sizes grow with H and n (logical counts capped at depth 6)\n";
}

void experiment_safety(const BenchScale& scale) {
  std::cout << "\n== L5.4/5.5 safety: false-collision rate after a correct "
               "configuration ==\n";
  Table t({"H", "n", "interactions", "collision triggers", "ghost triggers",
           "resets"});
  for (std::uint32_t h : {1u, 2u, 0u}) {
    const std::uint32_t n = h == 1 ? 64 : (h == 2 ? 32 : 16);
    const auto p = params_for(n, h);
    SublinearTimeSSR proto(p);
    auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 10000 + h);
    Simulation<SublinearTimeSSR> sim(proto, std::move(init), 10001 + h);
    const std::uint64_t horizon = h == 1 ? 400000ull * scale.trials(1)
                                         : (h == 2 ? 150000ull : 20000ull);
    sim.run(scale.smoke ? horizon / 10 : horizon);
    const auto& c = sim.counters();
    t.add_row({h_label(h), std::to_string(n),
               std::to_string(sim.interactions()),
               std::to_string(c.collision_triggers),
               std::to_string(c.ghost_triggers),
               std::to_string(c.resets_executed)});
  }
  t.print();
  std::cout << "paper: a uniquely-named configuration reached after a clean "
               "reset never produces a false collision (all zeros)\n";
}

void BM_SublinearInteractionSteadyState(benchmark::State& state) {
  const auto h = static_cast<std::uint32_t>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const auto p = params_for(n, h);
  SublinearTimeSSR proto(p);
  auto states = sublinear_config(p, SlAdversary::kCorrectRanked, 42);
  Simulation<SublinearTimeSSR> sim(proto, std::move(states), 43);
  sim.run(20000);  // reach tree steady state
  for (auto _ : state) sim.step();
  state.counters["dfs_nodes_per_call"] =
      static_cast<double>(sim.counters().detector.nodes_visited) /
      std::max<std::uint64_t>(1, sim.counters().detector.calls);
}
BENCHMARK(BM_SublinearInteractionSteadyState)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({0, 16});

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_sublinear: Protocols 5-8 / Theorem 5.7 "
               "(Table 1 rows 3-4) ===\n";
  ppsim::BenchReport report("sublinear");
  ppsim::experiment_detection_latency(scale, report);
  ppsim::experiment_stabilization(scale, report);
  ppsim::experiment_state_growth(scale);
  ppsim::experiment_safety(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
