// Kernel microbenchmarks (google-benchmark): the per-interaction costs that
// determine how large an n each protocol can be simulated at. Not a paper
// experiment — an engineering dashboard for the simulator itself.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "analysis/adversary.h"
#include "analysis/bench_report.h"
#include "core/batch_simulation.h"
#include "common/name.h"
#include "common/roster.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "core/simulation.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.below(1000));
}
BENCHMARK(BM_RngBelow);

void BM_SchedulerNext(benchmark::State& state) {
  Rng rng(1);
  UniformScheduler sched(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(sched.next(rng));
}
BENCHMARK(BM_SchedulerNext)->Arg(1024)->Arg(1 << 20);

void BM_NameCompare(benchmark::State& state) {
  Rng rng(1);
  const Name a = Name::from_bits(rng(), 30);
  const Name b = Name::from_bits(rng(), 30);
  for (auto _ : state) benchmark::DoNotOptimize(a < b);
}
BENCHMARK(BM_NameCompare);

void BM_RosterUnionDisjoint(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  Roster a, b;
  for (std::uint32_t i = 0; i < size; ++i) {
    a.insert(Name::from_bits(2 * i, 40));
    b.insert(Name::from_bits(2 * i + 1, 40));
  }
  for (auto _ : state) benchmark::DoNotOptimize(Roster::merged(a, b));
}
BENCHMARK(BM_RosterUnionDisjoint)->Arg(64)->Arg(1024);

void BM_RosterUnionShared(benchmark::State& state) {
  // The steady-state fast path: both rosters share storage.
  Roster a;
  for (std::uint32_t i = 0; i < 1024; ++i) a.insert(Name::from_bits(i, 40));
  const Roster b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Roster::union_size(a, b));
    benchmark::DoNotOptimize(Roster::merged(a, b));
  }
}
BENCHMARK(BM_RosterUnionShared);

void BM_SimulationStepSilentNState(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SilentNStateSSR proto(n);
  Simulation<SilentNStateSSR> sim(proto, silent_nstate_random_config(n, 1),
                                  2);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulationStepSilentNState)->Arg(1024)->Arg(1 << 16);

void BM_SimulationStepOptimalSilent(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  Simulation<OptimalSilentSSR> sim(
      proto, optimal_silent_config(params, OsAdversary::kUniformRandom, 1),
      2);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulationStepOptimalSilent)->Arg(1024)->Arg(1 << 16);

void BM_BatchStepSilentNState(benchmark::State& state) {
  // The diagonal fast path: one geometric jump per effective interaction.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 2;
  BatchSimulation<SilentNStateSSR> sim(SilentNStateSSR(n),
                                       silent_nstate_random_config(n, 1),
                                       seed);
  for (auto _ : state) {
    if (sim.step() == 0) {  // silent: restart from a fresh hostile config
      state.PauseTiming();
      ++seed;
      sim = BatchSimulation<SilentNStateSSR>(
          SilentNStateSSR(n), silent_nstate_random_config(n, seed), seed);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatchStepSilentNState)->Arg(1024)->Arg(1 << 16);

void BM_BatchStepOptimalSilent(benchmark::State& state) {
  // The keyed-passive path on a hostile (mostly-active) configuration.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  std::uint64_t seed = 2;
  BatchSimulation<OptimalSilentSSR> sim(
      proto, optimal_silent_config(params, OsAdversary::kUniformRandom, 1),
      seed);
  for (auto _ : state) {
    if (sim.step() == 0) {  // silent: restart from a fresh hostile config
      state.PauseTiming();
      ++seed;
      sim = BatchSimulation<OptimalSilentSSR>(
          proto,
          optimal_silent_config(params, OsAdversary::kUniformRandom, seed),
          seed);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatchStepOptimalSilent)->Arg(1024)->Arg(1 << 16);

void BM_SimulationStepSublinear(benchmark::State& state) {
  const auto h = static_cast<std::uint32_t>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const auto p = h == 0 ? SublinearParams::log_time(n)
                        : SublinearParams::constant_h(n, h);
  SublinearTimeSSR proto(p);
  Simulation<SublinearTimeSSR> sim(
      proto, sublinear_config(p, SlAdversary::kCorrectRanked, 1), 2);
  sim.run(20000);  // reach steady-state tree sizes
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
  state.counters["dfs_nodes_per_call"] =
      static_cast<double>(sim.counters().detector.nodes_visited) /
      std::max<std::uint64_t>(1, sim.counters().detector.calls);
}
// The H = Theta(log n) configuration is excluded here: a single steady-state
// step can cost seconds (the quasi-exponential live tree), which starves the
// wall-clock benchmark loop; bench_sublinear's state-growth table covers it.
BENCHMARK(BM_SimulationStepSublinear)
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Args({3, 256});

// Tees every benchmark result into BENCH_micro.json next to the console
// output, so the per-interaction cost trajectory is tracked across PRs.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchReport* report) : report_(report) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_->add()
          .set("experiment", run.benchmark_name())
          .set("backend", "micro")
          .set("time_per_op", run.GetAdjustedRealTime())
          .set("iterations", static_cast<std::uint64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  // Accept the repo-wide bench flags (--smoke/--quick/--full/--threads=N)
  // before handing the rest to google-benchmark; --smoke caps the measuring
  // time so CI exercises every kernel in seconds.
  std::vector<char*> passthrough;
  std::string min_time = "--benchmark_min_time=0.01";
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
      continue;
    }
    if (a == "--quick" || a == "--full" || a.rfind("--threads=", 0) == 0)
      continue;
    passthrough.push_back(argv[i]);
  }
  if (smoke) passthrough.push_back(min_time.data());
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  ppsim::BenchReport report("micro");
  ppsim::JsonTeeReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string path = report.write();
  if (!path.empty())
    std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
