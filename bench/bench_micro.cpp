// Kernel microbenchmarks (google-benchmark): the per-interaction costs that
// determine how large an n each protocol can be simulated at. Not a paper
// experiment — an engineering dashboard for the simulator itself.
//
// Two sections:
//   * pure kernel microbenches (RNG, scheduler, name/roster ops) stay on
//     google-benchmark — they have no scenario-level equivalent;
//   * protocol-stepping costs run through the Scenario API (until=ptime):
//     each cell is a ScenarioSpec, so the measured loop is byte-for-byte
//     the loop every harness runs (engine resolution, strategy controller,
//     seeding included) instead of a hand-rolled step() driver, and
//     ns/interaction falls out of run wall seconds / interactions.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/name.h"
#include "common/roster.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "core/table.h"

namespace ppsim {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.below(1000));
}
BENCHMARK(BM_RngBelow);

void BM_SchedulerNext(benchmark::State& state) {
  Rng rng(1);
  UniformScheduler sched(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(sched.next(rng));
}
BENCHMARK(BM_SchedulerNext)->Arg(1024)->Arg(1 << 20);

void BM_NameCompare(benchmark::State& state) {
  Rng rng(1);
  const Name a = Name::from_bits(rng(), 30);
  const Name b = Name::from_bits(rng(), 30);
  for (auto _ : state) benchmark::DoNotOptimize(a < b);
}
BENCHMARK(BM_NameCompare);

void BM_RosterUnionDisjoint(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  Roster a, b;
  for (std::uint32_t i = 0; i < size; ++i) {
    a.insert(Name::from_bits(2 * i, 40));
    b.insert(Name::from_bits(2 * i + 1, 40));
  }
  for (auto _ : state) benchmark::DoNotOptimize(Roster::merged(a, b));
}
BENCHMARK(BM_RosterUnionDisjoint)->Arg(64)->Arg(1024);

void BM_RosterUnionShared(benchmark::State& state) {
  // The steady-state fast path: both rosters share storage.
  Roster a;
  for (std::uint32_t i = 0; i < 1024; ++i) a.insert(Name::from_bits(i, 40));
  const Roster b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Roster::union_size(a, b));
    benchmark::DoNotOptimize(Roster::merged(a, b));
  }
}
BENCHMARK(BM_RosterUnionShared);

// Protocol-stepping dashboard on the Scenario API. engine=array pins the
// agent-array ground truth; engine=batch pins the count engine with the
// per-step strategy controller live (strategy=auto), which is what `auto`
// actually runs in the non-dense regimes. The H = Theta(log n) sublinear
// configuration is excluded as before: a single steady-state step can cost
// seconds (the quasi-exponential live tree), which starves a wall-clock
// measurement; bench_sublinear's state-growth table covers it.
void protocol_stepping(bool smoke, BenchReport& report) {
  struct Cell {
    const char* protocol;
    std::uint32_t n;
    const char* init;
    const char* engine;
    double ptime;  // parallel-time budget; interactions = ptime * n
  };
  const std::vector<Cell> cells = {
      {"silent-nstate", 1024, "uniform-random", "array", 1000.0},
      {"silent-nstate", 1 << 16, "uniform-random", "array", 16.0},
      {"silent-nstate", 1024, "uniform-random", "batch", 1000.0},
      {"silent-nstate", 1 << 16, "uniform-random", "batch", 16.0},
      {"optimal-silent", 1024, "uniform-random", "array", 1000.0},
      {"optimal-silent", 1 << 16, "uniform-random", "array", 16.0},
      {"optimal-silent", 1024, "uniform-random", "batch", 1000.0},
      {"optimal-silent", 1 << 16, "uniform-random", "batch", 16.0},
      {"sublinear-h1", 1024, "correct-ranked", "array", 40.0},
  };
  std::cout << "\n== protocol stepping (Scenario API, until=ptime) ==\n";
  Table t({"protocol", "n", "engine", "ns/interaction", "interactions"});
  for (const Cell& c : cells) {
    ScenarioSpec spec;
    spec.protocol = c.protocol;
    spec.n = c.n;
    spec.init = c.init;
    spec.engine = c.engine;
    spec.until = "ptime";
    spec.horizon_ptime = smoke ? std::max(1.0, c.ptime / 8) : c.ptime;
    spec.trials = smoke ? 1 : 3;
    spec.seed = 42;
    const ScenarioResult r = run_scenario(spec);
    const double per_interaction_ns =
        r.summary.mean / std::max(1.0, r.interactions_mean) * 1e9;
    const std::string engine_desc =
        r.backend == "batch" ? r.backend + "/" + r.strategy : r.backend;
    t.add_row({c.protocol, std::to_string(r.n), engine_desc,
               fmt(per_interaction_ns, 1), fmt(r.interactions_mean, 0)});
    report_scenario(report,
                    std::string("step_") + c.protocol + "_" + c.engine, r)
        .set("ns_per_interaction", per_interaction_ns);
  }
  t.print();
}

// Tees every benchmark result into BENCH_micro.json next to the console
// output, so the per-interaction cost trajectory is tracked across PRs.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchReport* report) : report_(report) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_->add()
          .set("experiment", run.benchmark_name())
          .set("backend", "micro")
          .set("time_per_op", run.GetAdjustedRealTime())
          .set("iterations", static_cast<std::uint64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  // Accept the repo-wide bench flags (--smoke/--quick/--full/--threads=N)
  // before handing the rest to google-benchmark; --smoke caps the measuring
  // time so CI exercises every kernel in seconds.
  std::vector<char*> passthrough;
  std::string min_time = "--benchmark_min_time=0.01";
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
      continue;
    }
    if (a == "--quick" || a == "--full" || a.rfind("--threads=", 0) == 0)
      continue;
    passthrough.push_back(argv[i]);
  }
  if (smoke) passthrough.push_back(min_time.data());
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  ppsim::BenchReport report("micro");
  ppsim::protocol_stepping(smoke, report);
  ppsim::JsonTeeReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string path = report.write();
  if (!path.empty())
    std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
