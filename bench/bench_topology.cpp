// Interaction-graph bench: convergence across topologies (core/topology.h)
// and the run-length-compressed ring engine's headroom, measured through
// the Scenario API so every cell is a declarative ScenarioSpec and every
// non-complete record carries its topology in the identity.
//
//   * diameter-dependent convergence: one-way epidemic completion time on
//     the clique vs ring vs line vs torus at the same n. On the complete
//     graph the epidemic finishes in Theta(log n) parallel time (coupon
//     collection from an ever-growing frontier); on a constant-degree
//     graph the frontier is O(1) edges, so each hop costs Theta(n)
//     parallel time and completion takes Theta(n * diameter-ish) — the
//     curve against the recorded diameter is the whole point of the
//     experiment;
//   * ring-ssle election time vs n on the compressed ring path: the
//     protocol's duel phase keeps O(1) bullets in flight, so the RLE
//     engine pays effective steps only, whatever n;
//   * the acceptance leg: agent array vs compressed ring at n = 10^6
//     (until=ptime, the converged coherent start, O(1) active edges) —
//     the recorded speedup must clear 10x, and in practice clears it by
//     orders of magnitude because the array pays every one of the
//     budget's n * T slots while the RLE engine geometric-skips the ~T
//     effective ones.
#include <cstdint>
#include <iostream>
#include <string>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/cli.h"
#include "core/table.h"
#include "core/topology.h"

namespace ppsim {
namespace {

ScenarioSpec topo_spec(const BenchScale& scale, const char* protocol,
                       const std::string& topology, std::uint32_t n,
                       std::uint64_t seed, std::uint32_t trials) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = topology;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  spec.threads = scale.threads;
  spec.faults = scale.faults;
  return spec;
}

// Epidemic completion time across graphs of very different diameter at
// the same population size.
void experiment_diameter_curve(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== one-way epidemic: completion time vs topology ==\n";
  Table t({"n", "topology", "diameter", "backend", "mean time", "ci95"});
  for (std::uint32_t n : scale.sizes({256, 1024, 4096})) {
    const std::uint32_t side = n == 256 ? 16 : n == 1024 ? 32 : 64;
    const std::string torus =
        "torus:" + std::to_string(side) + "x" + std::to_string(side);
    for (const std::string& topology :
         {std::string("complete"), std::string("ring"), std::string("line"),
          torus}) {
      const ScenarioSpec spec = topo_spec(scale, "one-way-epidemic", topology,
                                          n, 100 + n, scale.trials(20));
      const ScenarioResult r = run_scenario(spec);
      const std::uint32_t diameter = Topology::parse(topology, n).diameter();
      t.add_row({std::to_string(n), topology, std::to_string(diameter),
                 r.backend + (r.strategy.empty() ? "" : "/" + r.strategy),
                 fmt(r.summary.mean, 1), fmt(r.summary.ci95, 1)});
      report_scenario(report, "epidemic_diameter_curve", r)
          .set("diameter", static_cast<std::uint64_t>(diameter));
    }
  }
  t.print();
  std::cout << "constant-degree graphs pay ~n parallel time per frontier "
               "hop; the clique finishes in ~2 ln n\n";
}

// ring-ssle election time vs n on the compressed ring engine, from the
// fully adversarial start.
void experiment_election_curve(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ring-ssle: election time vs n (compressed ring path) "
               "==\n";
  Table t({"n", "backend", "mean time", "ci95", "failed"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const ScenarioSpec spec = topo_spec(scale, "ring-ssle", "ring", n,
                                        200 + n, scale.trials(10));
    const ScenarioResult r = run_scenario(spec);
    t.add_row({std::to_string(n), r.backend + "/" + r.strategy,
               fmt(r.summary.mean, 1), fmt(r.summary.ci95, 1),
               std::to_string(r.failed)});
    report_scenario(report, "ring_ssle_election_curve", r);
  }
  t.print();
}

// The acceptance leg: same fixed parallel-time budget on the agent array
// and the RLE ring engine at n = 10^6, from the converged coherent start
// (O(1) active edges — the compressed path's home regime). Metric is
// per-trial run wall seconds; the speedup record must clear 10x.
void experiment_million_compression(const BenchScale& scale,
                                    BenchReport& report) {
  std::cout << "\n== ring-ssle n = 10^6: agent array vs compressed ring "
               "(fixed ptime budget) ==\n";
  const std::uint32_t n = scale.smoke ? 100'000 : 1'000'000;
  const double budget_ptime = 20.0;
  const std::uint32_t trials = scale.smoke ? 1 : scale.trials(5);
  ScenarioSpec spec = topo_spec(scale, "ring-ssle", "ring", n, 300, trials);
  spec.init = "coherent";
  spec.until = "ptime";
  spec.horizon_ptime = budget_ptime;
  spec.threads = 1;  // wall-clock metric: never co-schedule trials
  ScenarioSpec array = spec;
  array.engine = "array";
  const ScenarioResult rle = run_scenario(spec);
  const ScenarioResult arr = run_scenario(array);
  const double speedup = rle.summary.mean > 0.0
                             ? arr.summary.mean / rle.summary.mean
                             : 0.0;
  Table t({"engine", "wall s / trial", "ci95"});
  t.add_row({arr.backend, fmt(arr.summary.mean, 4), fmt(arr.summary.ci95, 4)});
  t.add_row({rle.backend + "/" + rle.strategy, fmt(rle.summary.mean, 6),
             fmt(rle.summary.ci95, 6)});
  t.print();
  std::cout << "n = " << n << ", budget " << fmt(budget_ptime, 0)
            << " ptime: compressed ring is " << fmt(speedup, 1)
            << "x the agent array (acceptance floor: 10x)\n";
  report_scenario(report, "million_compression", arr);
  report_scenario(report, "million_compression", rle);
  report.add()
      .set("experiment", "million_compression_speedup")
      .set("n", static_cast<std::uint64_t>(n))
      .set("budget_ptime", budget_ptime)
      .set("speedup_rle_over_array", speedup);
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_topology: interaction graphs (diameter curves + "
               "ring compression) ===\n";
  ppsim::BenchReport report("topology");
  ppsim::experiment_diameter_curve(scale, report);
  ppsim::experiment_election_curve(scale, report);
  ppsim::experiment_million_compression(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  return 0;
}
