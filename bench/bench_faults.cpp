// Fault-injection bench: protocol behavior under an unreliable network
// (core/faults.h), measured through the Scenario API so every cell is a
// declarative ScenarioSpec and every record carries the `faulted` honesty
// stamp with its knobs (bench_compare keys on them; seeded faults stay
// bit-deterministic, so --strict applies to these records in full).
//
//   * convergence vs drop rate: Optimal-Silent-SSR ranked-stabilization
//     time across drop in {0, 0.1, 0.25, 0.5} — message loss is uniform
//     pair thinning, so time scales like 1/(1-drop) with the conditional
//     interaction law unchanged;
//   * the same law at n = 10^6 on the count path: detection latency of a
//     duplicated rank (optimal-silent, until=detected) and rank thinning
//     (silent-nstate, until=thinned) from duplicate-rank starts — the
//     geometric skip jumps straight to the meeting, so each trial costs
//     O(1) effective steps even at a million agents, and the drop curve is
//     the cleanest possible readout of the thinned pair probability;
//   * one-way delivery at n = 10^6: same cells with oneway=0.5 — replies
//     are lost, so only initiator-side transitions land and the meeting
//     must repeat until a two-way delivery resolves it;
//   * holding time vs churn at n = 10^6: from a correct (silent) ranking,
//     until=held measures the parallel time until a crash-reset breaks
//     correctness. While correct the configuration is silent, so the count
//     engines fast-forward between crashes and a million-agent trial costs
//     O(crashes) work. Expected holding time ~ 1/churn.
//
// --fault.drop/--fault.oneway/--fault.churn (common/cli.h) add one custom
// convergence cell with exactly those knobs on top of the fixed curves.
#include <cstdint>
#include <iostream>
#include <string>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/cli.h"
#include "core/table.h"

namespace ppsim {
namespace {

ScenarioSpec fault_spec(const BenchScale& scale, const char* protocol,
                        const char* init, const char* until, std::uint32_t n,
                        std::uint64_t seed, std::uint32_t trials) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.init = init;
  spec.until = until;
  spec.engine = "batch";
  spec.strategy = scale.strategy_name.empty() ? "auto" : scale.strategy_name;
  spec.shards = scale.shards;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  spec.threads = scale.threads;
  return spec;
}

void report_cell(BenchReport& report, const char* experiment,
                 const ScenarioResult& r) {
  report_scenario(report, experiment, r);
}

// Optimal-Silent-SSR ranked stabilization vs drop rate: the
// convergence-vs-loss curve at sizes where full stabilization is cheap.
void experiment_drop_curve(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== convergence vs drop rate (optimal-silent, ranked) ==\n";
  Table t({"n", "drop", "mean time", "ci95", "x vs drop=0", "1/(1-drop)"});
  for (std::uint32_t n : scale.sizes({256, 1024, 4096})) {
    const std::uint32_t trials = scale.trials(20);
    double base_mean = 0.0;
    for (double drop : {0.0, 0.1, 0.25, 0.5}) {
      ScenarioSpec spec = fault_spec(scale, "optimal-silent",
                                     "uniform-random", "ranked", n,
                                     1000 + n + static_cast<std::uint64_t>(
                                                    drop * 100.0),
                                     trials);
      spec.faults.drop = drop;
      const ScenarioResult r = run_scenario(spec);
      if (drop == 0.0) base_mean = r.summary.mean;
      t.add_row({std::to_string(n), fmt(drop, 2), fmt(r.summary.mean, 1),
                 fmt(r.summary.ci95, 1),
                 base_mean > 0 ? fmt(r.summary.mean / base_mean, 2) : "-",
                 fmt(1.0 / (1.0 - drop), 2)});
      report_cell(report, "drop_curve_ranked", r);
    }
  }
  t.print();
  std::cout << "drop is uniform pair thinning: time scales ~1/(1-drop)\n";
}

// The n = 10^6 count-path drop/one-way curves: meeting-time quantities
// from duplicate-rank starts, where the geometric skip makes each trial
// O(1) effective steps whatever the drop rate.
void experiment_million_loss(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== n = 10^6 count path: meeting times under message loss "
               "==\n";
  const std::uint32_t n = 1'000'000;
  const std::uint32_t trials = scale.trials(10);
  Table t({"protocol", "until", "drop", "oneway", "mean time", "ci95"});
  struct Cell {
    const char* protocol;
    const char* until;
    double drop, oneway;
  };
  const Cell cells[] = {
      {"optimal-silent", "detected", 0.25, 0.0},
      {"optimal-silent", "detected", 0.5, 0.0},
      {"optimal-silent", "detected", 0.0, 0.5},
      {"silent-nstate", "thinned", 0.25, 0.0},
      {"silent-nstate", "thinned", 0.5, 0.0},
      {"silent-nstate", "thinned", 0.0, 0.5},
  };
  std::uint64_t seed = 2000;
  for (const Cell& c : cells) {
    ScenarioSpec spec = fault_spec(scale, c.protocol, "duplicate-rank",
                                   c.until, n, ++seed, trials);
    spec.strategy = "geometric_skip";  // the O(1)-per-meeting path
    spec.faults.drop = c.drop;
    spec.faults.oneway = c.oneway;
    const ScenarioResult r = run_scenario(spec);
    t.add_row({c.protocol, c.until, fmt(c.drop, 2), fmt(c.oneway, 2),
               fmt(r.summary.mean, 0), fmt(r.summary.ci95, 0)});
    report_cell(report, "million_loss", r);
  }
  t.print();
}

// Holding time vs churn at n = 10^6: start correct (silent), measure the
// parallel time until a crash-reset breaks the ranking. The count engine
// fast-forwards through the silent stretches, so cost is O(crashes).
void experiment_holding_vs_churn(const BenchScale& scale,
                                 BenchReport& report) {
  std::cout << "\n== n = 10^6 holding time vs churn (until=held, correct "
               "start) ==\n";
  const std::uint32_t n = 1'000'000;
  const std::uint32_t trials = scale.trials(10);
  Table t({"protocol", "churn", "mean holding time", "ci95", "1/churn"});
  for (const char* protocol : {"optimal-silent", "silent-nstate"}) {
    for (double churn : {0.25, 1.0, 4.0}) {
      ScenarioSpec spec = fault_spec(scale, protocol, "correct-ranking",
                                     "held", n,
                                     3000 + static_cast<std::uint64_t>(
                                                churn * 100.0),
                                     trials);
      spec.strategy = "geometric_skip";
      spec.faults.churn = churn;
      const ScenarioResult r = run_scenario(spec);
      t.add_row({protocol, fmt(churn, 2), fmt(r.summary.mean, 2),
                 fmt(r.summary.ci95, 2), fmt(1.0 / churn, 2)});
      report_cell(report, "holding_vs_churn", r);
    }
  }
  t.print();
  std::cout << "a correct silent ranking holds ~1/churn parallel time: any "
               "crash of a ranked agent breaks it\n";
}

// --fault.* on the command line: one extra convergence cell with exactly
// those knobs (e.g. a drop+churn combination the fixed curves don't cover).
void experiment_custom(const BenchScale& scale, BenchReport& report) {
  if (!scale.faults.active()) return;
  std::cout << "\n== custom fault cell (--fault.* flags) ==\n";
  const std::uint32_t n = scale.smoke ? 256 : 1024;
  ScenarioSpec spec = fault_spec(scale, "optimal-silent", "uniform-random",
                                 "ranked", n, 4000, scale.trials(10));
  spec.faults = scale.faults;
  const ScenarioResult r = run_scenario(spec);
  std::cout << "drop=" << scale.faults.drop
            << " oneway=" << scale.faults.oneway
            << " churn=" << scale.faults.churn << " n=" << n << ": mean "
            << fmt(r.summary.mean, 2) << " +/- " << fmt(r.summary.ci95, 2)
            << " (" << r.failed << " failed)\n";
  report_cell(report, "custom", r);
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_faults: unreliable networks (drop / one-way / "
               "churn) ===\n";
  ppsim::BenchReport report("faults");
  ppsim::experiment_drop_curve(scale, report);
  ppsim::experiment_million_loss(scale, report);
  ppsim::experiment_holding_vs_churn(scale, report);
  ppsim::experiment_custom(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  return 0;
}
