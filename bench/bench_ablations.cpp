// Ablation experiments (see DESIGN.md): how the protocols degrade when the
// constants behind the paper's Theta(.) requirements are starved, which
// empirically justifies each requirement.
//
//   * Optimal-Silent Dmax: the dormant phase must outlast the slow leader
//     election (Lemma 4.2) — small Dmax => multi-leader awakenings => retries
//   * Optimal-Silent Emax: Unsettled patience must outlast ranking
//     (Theorem 4.3) — small Emax => spurious resets during healthy ranking
//   * Propagate-Reset Rmax: the wave must cover the population (Lemma 3.2)
//     — small Rmax => agents that never reset / double resets
//   * Sublinear Smax: sync values must be wide enough that a duplicate
//     cannot echo them by chance (Lemma 5.6's 1/Smax term)
//   * Sublinear TH: timers must live ~tau_{H+1} or detection paths expire
//   * direct-check rule at n = 2 (DESIGN.md erratum discussion)
//   * synthetic coin overhead (Section 6)
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/adversary.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "protocols/leader.h"
#include "protocols/optimal_silent.h"
#include "protocols/sublinear.h"
#include "analysis/bench_report.h"
#include "reset/reset_process.h"

namespace ppsim {
namespace {

void ablate_dmax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Optimal-Silent Dmax (dormancy vs slow "
               "election, Lemma 4.2) ==\n";
  constexpr std::uint32_t kN = 256;
  Table t({"Dmax/n", "unique-leader frac", "mean stabilization time"});
  for (double factor : scale.points({0.5, 1.0, 2.0, 4.0, 8.0, 16.0})) {
    const auto trials = scale.trials(12);
    std::uint32_t unique = 0;
    std::vector<double> times;
    for (std::uint32_t i = 0; i < trials; ++i) {
      auto params = OptimalSilentParams::standard(kN);
      params.dmax = static_cast<std::uint32_t>(factor * kN);
      OptimalSilentSSR proto(params);
      auto init = optimal_silent_config(params, OsAdversary::kAllPropagating,
                                        derive_seed(100 + i, factor * 16));
      Simulation<OptimalSilentSSR> sim(proto, std::move(init),
                                       derive_seed(200 + i, factor * 16));
      while (sim.counters().resets_executed == 0 &&
             sim.interactions() < (1ull << 31))
        sim.step();
      std::uint32_t leaders = 0;
      for (const auto& s : sim.states()) {
        if (s.role == OsRole::Resetting && s.leader) ++leaders;
        if (s.role == OsRole::Settled && s.rank == 1) ++leaders;
      }
      if (leaders == 1) ++unique;
      // Continue to stabilization to see the retry cost.
      RunOptions opts;
      opts.max_interactions = 4000ull * kN * kN;
      std::vector<OptimalSilentSSR::State> cont = sim.states();
      OptimalSilentSSR fresh(params);
      const RunResult r = run_until_ranked(fresh, std::move(cont),
                                           derive_seed(300 + i, factor * 16),
                                           opts);
      times.push_back(r.stabilized ? r.stabilization_ptime : -1);
    }
    t.add_row({fmt(factor, 1), fmt(static_cast<double>(unique) / trials, 2),
               fmt(summarize(times).mean, 0)});
    report.add()
        .set("experiment", "ablate_dmax")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(kN))
        .set("dmax_over_n", factor)
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("unique_fraction", static_cast<double>(unique) / trials)
        .set("parallel_time", summarize(times).mean);
  }
  t.print();
  std::cout << "small Dmax starves the L,L->L,F election (multi-leader "
               "awakenings, rank collisions, retries); large Dmax pays "
               "linear dormancy. Dmax = Theta(n) with a healthy constant is "
               "exactly the paper's design point\n";
}

void ablate_emax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Optimal-Silent Emax (Unsettled patience, "
               "Theorem 4.3) ==\n";
  constexpr std::uint32_t kN = 256;
  Table t({"Emax/n", "mean time", "timeout triggers/run"});
  for (double factor : scale.points({2.0, 4.0, 8.0, 16.0, 32.0})) {
    const auto trials = scale.trials(10);
    std::vector<double> times, triggers;
    for (std::uint32_t i = 0; i < trials; ++i) {
      auto params = OptimalSilentParams::standard(kN);
      params.emax = static_cast<std::uint32_t>(factor * kN);
      OptimalSilentSSR proto(params);
      auto init = optimal_silent_config(params, OsAdversary::kUniformRandom,
                                        derive_seed(400 + i, factor * 16));
      RunOptions opts;
      opts.max_interactions = 8000ull * kN * kN;
      Simulation<OptimalSilentSSR> sim(proto, std::move(init),
                                       derive_seed(500 + i, factor * 16));
      std::uint64_t budget = opts.max_interactions;
      while (!is_correctly_ranked(sim.protocol(), sim.states()) &&
             budget-- > 0)
        sim.step();
      times.push_back(sim.parallel_time());
      triggers.push_back(
          static_cast<double>(sim.counters().timeout_triggers));
    }
    t.add_row({fmt(factor, 0), fmt(summarize(times).mean, 0),
               fmt(summarize(triggers).mean, 1)});
    report.add()
        .set("experiment", "ablate_emax")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(kN))
        .set("emax_over_n", factor)
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(times).mean)
        .set("timeout_triggers", summarize(triggers).mean);
  }
  t.print();
  std::cout << "Emax too small fires timeouts during healthy ranking "
               "(restart storms); too large delays detection of genuinely "
               "stuck configurations — both ends cost time\n";
}

void ablate_rmax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Propagate-Reset Rmax (wave coverage, Lemma "
               "3.2) ==\n";
  constexpr std::uint32_t kN = 1024;
  Table t({"Rmax", "all-reset frac", "exactly-once frac"});
  for (double factor : scale.points({1.0, 2.0, 4.0, 8.0})) {
    const auto rmax = static_cast<std::uint32_t>(
        std::ceil(factor * std::log(kN)));
    const std::uint32_t dmax = 8 * rmax;
    const auto trials = scale.trials(15);
    std::uint32_t all_reset = 0, exactly_once = 0;
    for (std::uint32_t i = 0; i < trials; ++i) {
      ResetProcess proto(kN, rmax, dmax);
      std::vector<ResetProcess::State> init(kN);
      proto.trigger(init[0]);
      Simulation<ResetProcess> sim(proto, std::move(init),
                                   derive_seed(600 + i, factor * 16));
      // Run until fully computing (or give up).
      while (sim.interactions() < 2000ull * kN) {
        sim.step();
        bool all_computing = true;
        for (const auto& s : sim.states())
          if (s.resetting) {
            all_computing = false;
            break;
          }
        if (all_computing) break;
      }
      std::uint32_t min_r = UINT32_MAX, max_r = 0;
      for (const auto& s : sim.states()) {
        min_r = std::min(min_r, s.resets_executed);
        max_r = std::max(max_r, s.resets_executed);
      }
      if (min_r >= 1) ++all_reset;
      if (min_r == 1 && max_r == 1) ++exactly_once;
    }
    t.add_row({std::to_string(rmax),
               fmt(static_cast<double>(all_reset) / trials, 2),
               fmt(static_cast<double>(exactly_once) / trials, 2)});
    report.add()
        .set("experiment", "ablate_rmax")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(kN))
        .set("rmax", static_cast<std::uint64_t>(rmax))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("all_reset_fraction", static_cast<double>(all_reset) / trials)
        .set("exactly_once_fraction",
             static_cast<double>(exactly_once) / trials);
  }
  t.print();
  std::cout << "Rmax = Theta(log n) with a sufficient constant makes the "
               "wave reach everyone before dormancy (the paper uses 60 ln "
               "n for its tail bounds; ~8 ln n suffices empirically)\n";
}

void ablate_smax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Sublinear Smax (sync width vs lucky echoes, "
               "Lemma 5.6) ==\n";
  constexpr std::uint32_t kN = 64;
  Table t({"Smax", "mean detection time", "failed detections frac"});
  for (std::uint64_t smax : scale.points<std::uint64_t>(
           {2, 4, 16, 256, static_cast<std::uint64_t>(kN) * kN})) {
    const auto trials = scale.trials(15);
    std::vector<double> times;
    std::uint32_t failures = 0;
    for (std::uint32_t i = 0; i < trials; ++i) {
      auto p = SublinearParams::constant_h(kN, 2);
      p.smax = smax;
      p.direct_check = false;
      SublinearTimeSSR proto(p);
      auto init = sublinear_config(p, SlAdversary::kDuplicateNames,
                                   derive_seed(700 + i, smax));
      Simulation<SublinearTimeSSR> sim(proto, std::move(init),
                                       derive_seed(800 + i, smax));
      const std::uint64_t horizon = 400ull * kN * p.th;
      while (sim.counters().collision_triggers == 0 &&
             sim.interactions() < horizon)
        sim.step();
      if (sim.counters().collision_triggers == 0)
        ++failures;
      else
        times.push_back(sim.parallel_time());
    }
    t.add_row({std::to_string(smax),
               times.empty() ? "-" : fmt(summarize(times).mean, 1),
               fmt(static_cast<double>(failures) / trials, 2)});
    report.add()
        .set("experiment", "ablate_smax")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(kN))
        .set("smax", smax)
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", times.empty() ? -1.0 : summarize(times).mean)
        .set("failure_fraction", static_cast<double>(failures) / trials);
  }
  t.print();
  std::cout << "tiny Smax lets the duplicate echo sync values by luck "
               "(probability 1/Smax per edge), slowing detection; Smax = "
               "Theta(n^2) makes echoes negligible\n";
}

void ablate_th(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Sublinear TH (timer lifetime vs tau_{H+1}) "
               "==\n";
  constexpr std::uint32_t kN = 256;
  Table t({"TH", "TH/tau-scale", "mean detection time"});
  const auto p_ref = SublinearParams::constant_h(kN, 1);
  for (double factor : scale.points({0.25, 0.5, 1.0, 2.0})) {
    const auto th = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(factor * p_ref.th));
    const auto trials = scale.trials(12);
    std::vector<double> times;
    for (std::uint32_t i = 0; i < trials; ++i) {
      auto p = p_ref;
      p.th = th;
      p.direct_check = false;
      SublinearTimeSSR proto(p);
      auto init = sublinear_config(p, SlAdversary::kDuplicateNames,
                                   derive_seed(900 + i, factor * 16));
      Simulation<SublinearTimeSSR> sim(proto, std::move(init),
                                       derive_seed(1000 + i, factor * 16));
      while (sim.counters().collision_triggers == 0 &&
             sim.interactions() < (1ull << 31))
        sim.step();
      times.push_back(sim.parallel_time());
    }
    t.add_row({std::to_string(th), fmt(factor, 2),
               fmt(summarize(times).mean, 1)});
    report.add()
        .set("experiment", "ablate_th")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(kN))
        .set("th", static_cast<std::uint64_t>(th))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(times).mean);
  }
  t.print();
  std::cout << "timers shorter than tau_{H+1} expire detection paths before "
               "they can reach the duplicate — detection slows toward the "
               "direct-meeting Theta(n) rate\n";
}

void ablate_direct_check(const BenchScale&, BenchReport& report) {
  std::cout << "\n== ablation: the direct-check rule at n = 2 (DESIGN.md) "
               "==\n";
  Table t({"direct_check", "outcome"});
  for (bool direct : {true, false}) {
    auto p = SublinearParams::constant_h(2, 1);
    p.direct_check = direct;
    SublinearTimeSSR proto(p);
    auto init = sublinear_config(p, SlAdversary::kAllSameName, 1);
    Simulation<SublinearTimeSSR> sim(proto, std::move(init), 2);
    const std::uint64_t horizon = 2000000;
    bool ranked = false;
    while (sim.interactions() < horizon) {
      sim.step();
      if (is_correctly_ranked(sim.protocol(), sim.states())) {
        ranked = true;
        break;
      }
    }
    t.add_row({direct ? "on" : "off",
               ranked ? "stabilized at t=" + fmt(sim.parallel_time(), 1)
                      : "STUCK (no third party can witness the collision)"});
    report.add()
        .set("experiment", "ablate_direct_check")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(2))
        .set("direct_check", direct)
        .set("stabilized", ranked)
        .set("parallel_time", ranked ? sim.parallel_time() : -1.0);
  }
  t.print();
  std::cout << "faithful Protocol 7 detects only through third parties and "
               "cannot recover two same-named agents at n = 2; the direct "
               "rule (the paper's H = 0 warm-up) closes the gap and can "
               "never misfire\n";
}

void ablate_synthetic_coin(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: synthetic-coin derandomization overhead "
               "(Section 6) ==\n";
  constexpr std::uint32_t kN = 64;
  Table t({"coin", "mean stabilization time", "coin bits/agent"});
  for (bool coin : {false, true}) {
    const auto trials = scale.trials(10);
    std::vector<double> times, bits;
    for (std::uint32_t i = 0; i < trials; ++i) {
      auto p = SublinearParams::constant_h(kN, 2);
      p.use_synthetic_coin = coin;
      SublinearTimeSSR proto(p);
      auto init = sublinear_config(p, SlAdversary::kDuplicateNames,
                                   derive_seed(1100 + i, coin ? 1 : 0));
      Simulation<SublinearTimeSSR> sim(proto, std::move(init),
                                       derive_seed(1200 + i, coin ? 1 : 0));
      std::uint64_t budget = 1ull << 31;
      while (!is_correctly_ranked(sim.protocol(), sim.states()) &&
             budget-- > 0)
        sim.step();
      times.push_back(sim.parallel_time());
      bits.push_back(
          static_cast<double>(sim.counters().coin_bits) / kN);
    }
    t.add_row({coin ? "on" : "off", fmt(summarize(times).mean, 1),
               fmt(summarize(bits).mean, 1)});
    report.add()
        .set("experiment", "ablate_synthetic_coin")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(kN))
        .set("synthetic_coin", coin)
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(times).mean)
        .set("coin_bits_per_agent", summarize(bits).mean);
  }
  t.print();
  std::cout << "paper: the coin costs ~4 interactions per harvested bit "
               "(time multiplexing), a constant-factor slowdown of the "
               "renaming phase only\n";
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_ablations: constant-sensitivity studies ===\n";
  ppsim::BenchReport report("ablations");
  ppsim::ablate_dmax(scale, report);
  ppsim::ablate_emax(scale, report);
  ppsim::ablate_rmax(scale, report);
  ppsim::ablate_smax(scale, report);
  ppsim::ablate_th(scale, report);
  ppsim::ablate_direct_check(scale, report);
  ppsim::ablate_synthetic_coin(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  return 0;
}
