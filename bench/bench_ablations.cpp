// Ablation experiments (see DESIGN.md): how the protocols degrade when the
// constants behind the paper's Theta(.) requirements are starved, which
// empirically justifies each requirement.
//
//   * Optimal-Silent Dmax: the dormant phase must outlast the slow leader
//     election (Lemma 4.2) — small Dmax => multi-leader awakenings => retries
//   * Optimal-Silent Emax: Unsettled patience must outlast ranking
//     (Theorem 4.3) — small Emax => spurious resets during healthy ranking
//   * Propagate-Reset Rmax: the wave must cover the population (Lemma 3.2)
//     — small Rmax => agents that never reset / double resets
//   * Sublinear Smax: sync values must be wide enough that a duplicate
//     cannot echo them by chance (Lemma 5.6's 1/Smax term)
//   * Sublinear TH: timers must live ~tau_{H+1} or detection paths expire
//   * direct-check rule at n = 2 (DESIGN.md erratum discussion)
//   * synthetic coin overhead (Section 6)
//
// Every ablation is a ScenarioSpec sweep over param.<name> overrides
// (core/registry.h ParamReader): the constants under study are starved
// through exactly the interface ppsle_run exposes, each cell runs the
// shared scenario driver (engine resolution, seeding, stop conditions),
// and each result lands in the BENCH JSON through report_scenario — the
// same schema the smoke matrix and ppsle_run emit. Reproduce any cell by
// hand, e.g.:
//   ppsle_run --scenario protocol=optimal-silent n=256 init=uniform-random
//             until=ranked param.emax_factor=2
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/cli.h"
#include "core/registry.h"
#include "core/table.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

// One sweep cell: run the spec through the registry, add the shared table
// row, emit the shared BENCH record.
ScenarioResult ablate_cell(BenchReport& report, const std::string& experiment,
                           const ScenarioSpec& spec, Table& t,
                           const std::string& sweep_label) {
  const ScenarioResult r = run_scenario(spec);
  t.add_row({sweep_label,
             fmt(r.summary.mean, 1) + " +/- " + fmt(r.summary.ci95, 1),
             std::to_string(r.failed) + "/" + std::to_string(r.trials)});
  report_scenario(report, experiment, r);
  return r;
}

void ablate_dmax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Optimal-Silent Dmax (dormancy vs slow "
               "election, Lemma 4.2) ==\n";
  Table t({"Dmax/n", "stabilization time mean +/- ci95", "failed"});
  for (double factor : scale.points({0.5, 1.0, 2.0, 4.0, 8.0, 16.0})) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.n = 256;
    spec.init = "all-propagating";  // every agent mid-wave: the retry regime
    spec.until = "ranked";
    spec.trials = scale.trials(12);
    spec.seed = 100;
    spec.max_interactions = 4000ull * 256 * 256;
    spec.params = {{"dmax_factor", fmt(factor, 2)}};
    ablate_cell(report, "ablate_dmax", spec, t, fmt(factor, 1));
  }
  t.print();
  std::cout << "small Dmax starves the L,L->L,F election (multi-leader "
               "awakenings, rank collisions, retries); large Dmax pays "
               "linear dormancy. Dmax = Theta(n) with a healthy constant is "
               "exactly the paper's design point\n";
}

void ablate_emax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Optimal-Silent Emax (Unsettled patience, "
               "Theorem 4.3) ==\n";
  Table t({"Emax/n", "stabilization time mean +/- ci95", "failed"});
  for (double factor : scale.points({2.0, 4.0, 8.0, 16.0, 32.0})) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.n = 256;
    spec.init = "uniform-random";
    spec.until = "ranked";
    spec.trials = scale.trials(10);
    spec.seed = 400;
    spec.max_interactions = 8000ull * 256 * 256;
    spec.params = {{"emax_factor", fmt(factor, 2)}};
    ablate_cell(report, "ablate_emax", spec, t, fmt(factor, 0));
  }
  t.print();
  std::cout << "Emax too small fires timeouts during healthy ranking "
               "(restart storms); too large delays detection of genuinely "
               "stuck configurations — both ends cost time\n";
}

void ablate_rmax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Propagate-Reset Rmax (wave coverage, Lemma "
               "3.2) ==\n";
  Table t({"Rmax factor", "drain time mean +/- ci95", "failed"});
  for (double factor : scale.points({1.0, 2.0, 4.0, 8.0})) {
    ScenarioSpec spec;
    spec.protocol = "reset-process";
    spec.n = 1024;
    spec.init = "trigger-one";
    spec.until = "drained";
    spec.trials = scale.trials(15);
    spec.seed = 600;
    spec.max_interactions = 2000ull * 1024;
    // Keep the old experiment's Dmax = 8 Rmax coupling while Rmax shrinks.
    spec.params = {{"rmax_factor", fmt(factor, 2)}, {"dmax_factor", "8"}};
    ablate_cell(report, "ablate_rmax", spec, t, fmt(factor, 1));
  }
  t.print();
  std::cout << "Rmax = Theta(log n) with a sufficient constant makes the "
               "wave reach everyone before dormancy (the paper uses 60 ln "
               "n for its tail bounds; ~8 ln n suffices empirically); "
               "per-agent coverage invariants are asserted by the tier-1 "
               "reset tests\n";
}

void ablate_smax(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Sublinear Smax (sync width vs lucky echoes, "
               "Lemma 5.6) ==\n";
  Table t({"Smax", "detection time mean +/- ci95", "failed"});
  for (std::uint64_t smax :
       scale.points<std::uint64_t>({2, 4, 16, 256, 64ull * 64})) {
    ScenarioSpec spec;
    spec.protocol = "sublinear-h1";
    spec.n = 64;
    spec.init = "duplicate-names";
    spec.until = "detected";
    spec.trials = scale.trials(15);
    spec.seed = 700;
    spec.max_interactions = 2'000'000;
    // Third-party detection only: the direct rule would mask echo luck.
    spec.params = {{"smax", std::to_string(smax)}, {"direct_check", "0"}};
    ablate_cell(report, "ablate_smax", spec, t, std::to_string(smax));
  }
  t.print();
  std::cout << "tiny Smax lets the duplicate echo sync values by luck "
               "(probability 1/Smax per edge), slowing detection; Smax = "
               "Theta(n^2) makes echoes negligible\n";
}

void ablate_th(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: Sublinear TH (timer lifetime vs tau_{H+1}) "
               "==\n";
  const auto p_ref = SublinearParams::constant_h(256, 1);
  Table t({"TH", "TH/tau-scale", "detection time mean +/- ci95", "failed"});
  for (double factor : scale.points({0.25, 0.5, 1.0, 2.0})) {
    const auto th = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(factor * p_ref.th));
    ScenarioSpec spec;
    spec.protocol = "sublinear-h1";
    spec.n = 256;
    spec.init = "duplicate-names";
    spec.until = "detected";
    spec.trials = scale.trials(12);
    spec.seed = 900;
    spec.max_interactions = 1ull << 31;
    spec.params = {{"th", std::to_string(th)}, {"direct_check", "0"}};
    const ScenarioResult r = run_scenario(spec);
    t.add_row({std::to_string(th), fmt(factor, 2),
               fmt(r.summary.mean, 1) + " +/- " + fmt(r.summary.ci95, 1),
               std::to_string(r.failed) + "/" + std::to_string(r.trials)});
    report_scenario(report, "ablate_th", r);
  }
  t.print();
  std::cout << "timers shorter than tau_{H+1} expire detection paths before "
               "they can reach the duplicate — detection slows toward the "
               "direct-meeting Theta(n) rate\n";
}

void ablate_direct_check(const BenchScale&, BenchReport& report) {
  std::cout << "\n== ablation: the direct-check rule at n = 2 (DESIGN.md) "
               "==\n";
  Table t({"direct_check", "outcome"});
  for (bool direct : {true, false}) {
    ScenarioSpec spec;
    spec.protocol = "sublinear-h1";
    spec.n = 2;
    spec.init = "all-same-name";
    spec.until = "ranked";
    spec.trials = 1;
    spec.seed = 1;
    spec.max_interactions = 2'000'000;
    spec.params = {{"direct_check", direct ? "1" : "0"}};
    const ScenarioResult r = run_scenario(spec);
    t.add_row({direct ? "on" : "off",
               r.failed == 0
                   ? "stabilized at t=" + fmt(r.summary.mean, 1)
                   : "STUCK (no third party can witness the collision)"});
    report_scenario(report, "ablate_direct_check", r);
  }
  t.print();
  std::cout << "faithful Protocol 7 detects only through third parties and "
               "cannot recover two same-named agents at n = 2; the direct "
               "rule (the paper's H = 0 warm-up) closes the gap and can "
               "never misfire\n";
}

void ablate_synthetic_coin(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== ablation: synthetic-coin derandomization overhead "
               "(Section 6) ==\n";
  Table t({"coin", "stabilization time mean +/- ci95", "failed"});
  for (bool coin : {false, true}) {
    ScenarioSpec spec;
    spec.protocol = "sublinear-h1";
    spec.n = 64;
    spec.init = "duplicate-names";
    spec.until = "ranked";
    spec.trials = scale.trials(10);
    spec.seed = 1100;
    spec.max_interactions = 1ull << 31;
    spec.params = {{"synthetic_coin", coin ? "1" : "0"}};
    ablate_cell(report, "ablate_synthetic_coin", spec, t,
                coin ? "on" : "off");
  }
  t.print();
  std::cout << "paper: the coin costs ~4 interactions per harvested bit "
               "(time multiplexing), a constant-factor slowdown of the "
               "renaming phase only\n";
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_ablations: constant-sensitivity studies "
               "(Scenario API + param overrides) ===\n";
  ppsim::BenchReport report("ablations");
  ppsim::ablate_dmax(scale, report);
  ppsim::ablate_emax(scale, report);
  ppsim::ablate_rmax(scale, report);
  ppsim::ablate_smax(scale, report);
  ppsim::ablate_th(scale, report);
  ppsim::ablate_direct_check(scale, report);
  ppsim::ablate_synthetic_coin(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  return 0;
}
