// Experiment group L2.7 / C2.8 / L2.9 / L2.10 / L2.11 (see DESIGN.md):
// empirical validation of the probabilistic tools of Section 2.1 —
//
//   * two-way epidemic:  E[T_n] = (n-1) H_{n-1} ~ n ln n, tail bound
//   * roll call:         E[R_n] ~ 1.5 n ln n
//   * bounded epidemic:  E[tau_k] <= k n^{1/k};  tau_{3 log2 n} <= 3 ln n
//   * epidemic trees:    height ~ e ln n (uniform random recursive trees)
//
// plus google-benchmark microbenchmarks of the process kernels.
//
// Deliberately NOT on the Scenario API: these are raw Section 2.1
// processes (two-way epidemic, roll call, bounded epidemic, recursive
// trees), not registered protocols — the registry's one-way-epidemic entry
// measures a different process, so no scenario covers these cells.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/experiments.h"
#include "core/stats.h"
#include "core/table.h"
#include "processes/bounded_epidemic.h"
#include "processes/coupon.h"
#include "processes/epidemic.h"
#include "processes/recursive_tree.h"
#include "processes/roll_call.h"

namespace ppsim {
namespace {

void experiment_epidemic(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== L2.7/C2.8: two-way epidemic completion time ==\n";
  Table t({"n", "mean T_n (inter.)", "(n-1)H_{n-1}", "ratio", "p99/nln(n)",
           "max/3nln(n)", "frac > 3n ln n"});
  for (std::uint32_t n : scale.sizes({64, 128, 256, 512, 1024, 2048})) {
    const auto trials = scale.trials(n <= 256 ? 400 : 150);
    const auto xs = run_trials(trials, 1000 + n, [&](std::uint64_t seed) {
      return static_cast<double>(run_epidemic(n, seed).interactions);
    });
    const Summary s = summarize(xs);
    const double exact = epidemic_expected_interactions(n);
    const double nlogn = n * std::log(n);
    int exceed = 0;
    for (double x : xs)
      if (x > 3 * nlogn) ++exceed;
    t.add_row({std::to_string(n), fmt(s.mean, 0), fmt(exact, 0),
               fmt(s.mean / exact, 3), fmt(s.p99 / nlogn, 2),
               fmt(s.max / (3 * nlogn), 2),
               fmt(static_cast<double>(exceed) / xs.size(), 4)});
    report.add()
        .set("experiment", "epidemic")
        .set("backend", "process")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("interactions", s.mean)
        .set("expected_interactions", exact);
  }
  t.print();
  std::cout << "paper: E[T_n] = (n-1)H_{n-1} (ratio -> 1); "
               "P[T_n > 3n ln n] < 1/n^2 (last column ~ 0)\n";
}

void experiment_roll_call(const BenchScale& scale) {
  std::cout << "\n== L2.9: roll call completion time ==\n";
  Table t({"n", "mean R_n (inter.)", "R_n / T_n(exact)", "R_n / (1.5 n ln n)",
           "frac > 3n ln n"});
  for (std::uint32_t n : scale.sizes({64, 128, 256, 512, 1024})) {
    const auto trials = scale.trials(n <= 256 ? 200 : 60);
    const auto xs = run_trials(trials, 2000 + n, [&](std::uint64_t seed) {
      return static_cast<double>(run_roll_call(n, seed).interactions);
    });
    const Summary s = summarize(xs);
    const double epi = epidemic_expected_interactions(n);
    const double bound = 1.5 * n * std::log(n);
    int exceed = 0;
    for (double x : xs)
      if (x > 2 * bound) ++exceed;
    t.add_row({std::to_string(n), fmt(s.mean, 0), fmt(s.mean / epi, 3),
               fmt(s.mean / bound, 3),
               fmt(static_cast<double>(exceed) / xs.size(), 4)});
  }
  t.print();
  std::cout << "paper: E[R_n] ~ 1.5 n ln n, i.e. 1.5x the epidemic "
               "(middle columns -> 1.5 and 1.0)\n";
}

void experiment_bounded_epidemic(const BenchScale& scale) {
  std::cout << "\n== L2.10: bounded epidemic tau_k vs k * n^{1/k} ==\n";
  Table t({"n", "k", "mean tau_k (time)", "k n^{1/k}", "ratio"});
  for (std::uint32_t n : scale.sizes({256, 1024, 4096})) {
    for (std::uint32_t k : {1u, 2u, 3u, 4u}) {
      if (k == 1 && n > 1024) continue;  // tau_1 ~ n/2: too slow at 4096
      const auto trials = scale.trials(k == 1 ? 40 : 80);
      const auto xs = run_trials(trials, 3000 + n * 7 + k,
                                 [&](std::uint64_t seed) {
                                   return run_bounded_epidemic(n, k, k, seed)
                                       .tau_by_level[k];
                                 });
      const Summary s = summarize(xs);
      const double bound =
          k * std::pow(static_cast<double>(n), 1.0 / k);
      t.add_row({std::to_string(n), std::to_string(k), fmt(s.mean, 2),
                 fmt(bound, 1), fmt(s.mean / bound, 3)});
    }
  }
  t.print();
  std::cout << "paper: E[tau_k] <= k n^{1/k} (ratio <= ~1)\n";

  std::cout << "\n== L2.11: tau_k for k = 3 log2 n vs 3 ln n ==\n";
  Table t2({"n", "k=3log2(n)", "mean tau_k", "p95", "3 ln n", "mean/3ln(n)"});
  for (std::uint32_t n : scale.sizes({256, 1024, 4096})) {
    std::uint32_t lg = 0;
    while ((1u << lg) < n) ++lg;
    const std::uint32_t k = 3 * lg;
    const auto trials = scale.trials(60);
    const auto xs =
        run_trials(trials, 4000 + n, [&](std::uint64_t seed) {
          return run_bounded_epidemic(n, k, k, seed).tau_by_level[k];
        });
    const Summary s = summarize(xs);
    const double bound = 3 * std::log(n);
    t2.add_row({std::to_string(n), std::to_string(k), fmt(s.mean, 2),
                fmt(s.p95, 2), fmt(bound, 2), fmt(s.mean / bound, 3)});
  }
  t2.print();
  std::cout << "paper: tau_{3 log2 n} <= 3 ln n whp (ratio <= ~1)\n";
}

void experiment_recursive_tree(const BenchScale& scale) {
  std::cout << "\n== L2.11 substrate: epidemic infection-tree height ==\n";
  Table t({"n", "mean height", "e ln n", "ratio", "mean last-agent depth"});
  for (std::uint32_t n : scale.sizes({256, 1024, 4096, 16384})) {
    const auto trials = scale.trials(n <= 4096 ? 60 : 20);
    std::vector<double> hs, ds;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const auto r = run_epidemic_tree(n, derive_seed(5000 + n, i));
      hs.push_back(r.height);
      ds.push_back(r.last_agent_depth);
    }
    const Summary sh = summarize(hs);
    const Summary sd = summarize(ds);
    const double expected = std::exp(1.0) * std::log(n);
    t.add_row({std::to_string(n), fmt(sh.mean, 2), fmt(expected, 2),
               fmt(sh.mean / expected, 3), fmt(sd.mean, 2)});
  }
  t.print();
  std::cout << "paper ([32,33]): height of the uniform random recursive tree "
               "is ~ e ln n (ratio -> 1)\n";

  std::cout << "\n== coupon collector over scheduled pairs ==\n";
  Table t2({"n", "mean interactions", "0.5 n ln n", "ratio"});
  for (std::uint32_t n : scale.sizes({256, 1024, 4096})) {
    const auto trials = scale.trials(100);
    const auto xs = run_trials(trials, 6000 + n, [&](std::uint64_t seed) {
      return static_cast<double>(
          run_pair_coupon_collector(n, seed).interactions);
    });
    const Summary s = summarize(xs);
    const double expected = 0.5 * n * std::log(n);
    t2.add_row({std::to_string(n), fmt(s.mean, 0), fmt(expected, 0),
                fmt(s.mean / expected, 3)});
  }
  t2.print();
}

// --- google-benchmark microbenchmarks of the kernels. ---

void BM_Epidemic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_epidemic(n, seed++));
  }
}
BENCHMARK(BM_Epidemic)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RollCall(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_roll_call(n, seed++));
  }
}
BENCHMARK(BM_RollCall)->Arg(256)->Arg(1024);

void BM_BoundedEpidemicTau3(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_bounded_epidemic(n, 3, 3, seed++));
  }
}
BENCHMARK(BM_BoundedEpidemicTau3)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_prob_tools: Section 2.1 probabilistic tools "
               "(Lemmas 2.7-2.11) ===\n";
  ppsim::BenchReport report("prob_tools");
  ppsim::experiment_epidemic(scale, report);
  ppsim::experiment_roll_call(scale);
  ppsim::experiment_bounded_epidemic(scale);
  ppsim::experiment_recursive_tree(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";

  // Microbenchmarks only when explicitly requested (keeps default runs fast).
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
