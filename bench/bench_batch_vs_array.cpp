// Backend face-off: agent-array Simulation vs the count-based batched
// backend (core/batch_simulation.h) on Silent-n-state-SSR.
//
// Two experiments:
//  * fixed interaction budget per n — both backends simulate the same
//    number of scheduler draws from the worst-case configuration; the
//    batched backend geometric-skips the null stretches that dominate the
//    Theta(n^2) regime, so its advantage grows without bound in n
//    (the speedup curve is the deliverable: ISSUE 1 demands >= 10x at
//    n = 10^6, the log-log fit shows how far beyond that it lands)
//  * run-to-silence at moderate n — wall-clock to stabilization for the
//    array backend, the batched backend, and the hand-rolled
//    SilentNStateFast accelerator, with the parallel-time means printed so
//    distributional agreement is visible alongside the speed difference.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/batch_simulation.h"
#include "core/engine.h"
#include "core/sharded_simulation.h"
#include "core/stats.h"
#include "core/table.h"
#include "protocols/silent_nstate.h"
#include "protocols/silent_nstate_fast.h"

namespace ppsim {
namespace {

void experiment_fixed_budget(const BenchScale& scale, BenchReport& report) {
  // --strategy= pins the batched engine's path (default: geometric skip,
  // the configuration ISSUE 1's >= 10x acceptance was measured on); the
  // choice lands in every record so bench_compare keys on it.
  const BatchStrategy strategy =
      scale.strategy_or(BatchStrategy::kGeometricSkip);
  std::cout << "\n== fixed parallel-time budget: array vs batched backend "
               "(worst-case config, strategy "
            << to_string(strategy) << ") ==\n";
  // Equal *parallel time* per n is the apples-to-apples workload: the
  // model's time unit is interactions/n, and every paper experiment runs
  // Omega(n)..Omega(n^2) parallel time, far beyond this budget.
  const std::uint64_t ptime_budget = scale.quick ? 20 : 100;
  std::cout << "budget = " << ptime_budget << " parallel time units ("
            << ptime_budget << "n interactions) per run\n";
  Table t({"n", "array s", "batch s", "speedup", "batch eff. events",
           "batch null-skipped"});
  std::vector<double> ns, speedups;
  auto sizes = scale.sizes({10'000, 100'000, 1'000'000});
  if (strategy == BatchStrategy::kSharded && sizes.size() > 1) {
    // The worst-case config occupies ~n states and is silent-heavy — the
    // sharded engine's anti-regime (its per-round split is
    // O(shards x occupied)); keep the smallest size for the A/B and point
    // at bench_optimal_silent's sharded_scaling leg for its target regime.
    sizes = std::vector<std::uint32_t>{sizes.front()};
    std::cout << "(sharded forced on a ~n-occupied silent-heavy workload: "
                 "larger sizes skipped; the sharded target regime is "
                 "bench_optimal_silent's sharded_scaling leg)\n";
  }
  for (std::uint32_t n : sizes) {
    const std::uint64_t seed = derive_seed(42, n);
    const std::uint64_t budget = ptime_budget * n;

    const WallTimer t_array;
    Simulation<SilentNStateSSR> array_sim(SilentNStateSSR(n),
                                          silent_nstate_worst_config(n), seed);
    array_sim.run(budget);
    const double array_s = t_array.seconds();

    // --strategy=sharded A/Bs the intra-run parallel engine here
    // (--shards=N, --threads=N cap the shard/worker counts).
    const WallTimer t_batch;
    double batch_s;
    BatchStepStats batch_stats;
    if (strategy == BatchStrategy::kSharded) {
      ShardedOptions options;
      options.shards = scale.shards;
      options.max_workers = scale.threads;
      ShardedSimulation<SilentNStateSSR> batch_sim(
          SilentNStateSSR(n), silent_nstate_worst_config(n), seed, options);
      batch_sim.run(budget);
      batch_s = t_batch.seconds();
      batch_stats = batch_sim.stats();
    } else {
      BatchSimulation<SilentNStateSSR> batch_sim(
          SilentNStateSSR(n), silent_nstate_worst_config(n), seed, strategy);
      batch_sim.run(budget);
      batch_s = t_batch.seconds();
      batch_stats = batch_sim.stats();
    }

    const double speedup = array_s / batch_s;
    ns.push_back(static_cast<double>(n));
    speedups.push_back(speedup);
    t.add_row({std::to_string(n), fmt(array_s, 4), fmt(batch_s, 4),
               fmt(speedup, 1),
               std::to_string(batch_stats.effective),
               std::to_string(batch_stats.batched)});
    for (const char* backend : {"array", "batch"}) {
      BenchRecord& rec = report.add();
      if (backend == std::string("batch"))
        rec.set("strategy", to_string(strategy));
      rec.set("experiment", "fixed_budget")
          .set("backend", backend)
          .set("n", static_cast<std::uint64_t>(n))
          .set("interactions", budget)
          .set("parallel_time", static_cast<double>(ptime_budget))
          .set("wall_seconds",
               backend == std::string("array") ? array_s : batch_s)
          .set("speedup_vs_array", speedup);
    }
  }
  t.print();
  if (ns.size() < 2) return;
  const LinearFit f = fit_power_law(ns, speedups);
  std::cout << "speedup curve: speedup ~ n^" << fmt(f.slope, 2)
            << "  (R^2 = " << fmt(f.r2, 3) << ")\n";
  if (scale.quick)
    std::cout << "(acceptance check skipped: --quick shrinks the budget; "
                 "run without flags for the >= 10x criterion)\n";
  else if (speedups.back() >= 10.0)
    std::cout << "PASS: >= 10x at n = 10^6 (measured " << fmt(speedups.back(), 1)
              << "x)\n";
  else
    std::cout << "FAIL: < 10x at n = 10^6 (measured " << fmt(speedups.back(), 1)
              << "x)\n";
}

void experiment_run_to_silence(const BenchScale& scale, BenchReport& report) {
  const BatchStrategy strategy =
      scale.strategy_or(BatchStrategy::kGeometricSkip);
  std::cout << "\n== run to stabilization: wall clock per backend (batch "
               "strategy "
            << to_string(strategy) << ") ==\n";
  Table t({"n", "trials", "array s", "batch s", "fast s", "array E[time]",
           "batch E[time]", "fast E[time]"});
  // This workload is the multinomial strategy's textbook worst case —
  // Theta(n^3) interactions, nearly all null, which it must grind through
  // batch by batch while the diagonal skip jumps them — so a forced
  // --strategy=multinomial A/B keeps only the smallest size.
  auto sizes = scale.sizes({256, 512, 1024});
  if ((strategy == BatchStrategy::kMultinomial ||
       strategy == BatchStrategy::kSharded) &&
      sizes.size() > 1) {
    sizes = std::vector<std::uint32_t>{sizes.front()};
    std::cout << "(" << to_string(strategy)
              << " forced on a silent-heavy Theta(n^3) workload: larger "
                 "sizes skipped)\n";
  }
  for (std::uint32_t n : sizes) {
    const std::uint32_t trials = scale.trials(10);
    std::vector<double> at, bt, ft;

    const WallTimer t_array;
    for (std::uint32_t i = 0; i < trials; ++i) {
      RunOptions opts;
      opts.max_interactions = 1ull << 62;
      at.push_back(run_until_ranked(SilentNStateSSR(n),
                                    silent_nstate_worst_config(n),
                                    derive_seed(100 + n, i), opts)
                       .stabilization_ptime);
    }
    const double array_s = t_array.seconds();

    const WallTimer t_batch;
    for (std::uint32_t i = 0; i < trials; ++i) {
      if (strategy == BatchStrategy::kSharded) {
        ShardedOptions options;
        options.shards = scale.shards;
        options.max_workers = scale.threads;
        ShardedSimulation<SilentNStateSSR> sim(
            SilentNStateSSR(n), silent_nstate_worst_config(n),
            derive_seed(200 + n, i), options);
        sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 62);
        bt.push_back(sim.parallel_time());
      } else {
        BatchSimulation<SilentNStateSSR> sim(
            SilentNStateSSR(n), silent_nstate_worst_config(n),
            derive_seed(200 + n, i), strategy);
        sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 62);
        bt.push_back(sim.parallel_time());
      }
    }
    const double batch_s = t_batch.seconds();

    const WallTimer t_fast;
    for (std::uint32_t i = 0; i < trials; ++i)
      ft.push_back(SilentNStateFast(n)
                       .run(silent_nstate_worst_counts(n),
                            derive_seed(300 + n, i))
                       .parallel_time);
    const double fast_s = t_fast.seconds();

    t.add_row({std::to_string(n), std::to_string(trials), fmt(array_s, 3),
               fmt(batch_s, 4), fmt(fast_s, 4), fmt(summarize(at).mean, 0),
               fmt(summarize(bt).mean, 0), fmt(summarize(ft).mean, 0)});
    report.add()
        .set("experiment", "run_to_silence")
        .set("backend", "batch")
        .set("strategy", to_string(strategy))
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(bt).mean)
        .set("wall_seconds", batch_s);
  }
  t.print();
  std::cout << "(the three E[time] columns agree within noise: same jump "
               "chain, three implementations)\n";
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  ppsim::BenchReport report("batch_vs_array");
  std::cout << "=== bench_batch_vs_array: count-based batched backend "
               "(ISSUE 1 tentpole) ===\n";
  ppsim::experiment_fixed_budget(scale, report);
  ppsim::experiment_run_to_silence(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  return 0;
}
