// Experiment T1 (see DESIGN.md): the paper's Table 1 — time and space of
// every self-stabilizing ranking protocol, side by side — now a thin
// wrapper over the Scenario API (core/registry.h, analysis/scenarios.h):
// every measurement below is a declarative ScenarioSpec executed by the
// protocol registry, the same specs `ppsle_run --scenario` takes on the
// command line (bench/scenarios/table1_row1.json reproduces the row-1
// sweep standalone).
//
//   protocol                    expected time   WHP time        states  silent
//   Silent-n-state-SSR [21]     Theta(n^2)      Theta(n^2)      n       yes
//   Optimal-Silent-SSR          Theta(n)        Theta(n log n)  O(n)    yes
//   Sublinear-Time-SSR  H=logn  Theta(log n)    Theta(log n)    exp     no
//   Sublinear-Time-SSR  H=const Theta(H n^{1/(H+1)})            exp     no
//
// Sections:
//  * the measured Table 1 at laptop sizes (rows 1-2 on the batched backend,
//    rows 3-4 on the agent array — Sublinear's state space is not
//    enumerable);
//  * the batched backend's large-n extension of rows 1-2: full row-1
//    stabilization up to n = 10^6+ and the Observation 2.6 detection
//    latency (time until a duplicated rank is detected, the paper's Omega(n)
//    lower-bound quantity for silent protocols) up to n = 10^7;
//  * the backend acceptance head-to-head at n = 10^6: the same
//    duplicate-rank workload on both engines, wall-clock measured, >= 10x
//    required (ISSUE 2) and recorded in BENCH_table1.json.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/cli.h"
#include "core/stats.h"
#include "core/table.h"

namespace ppsim {
namespace {

struct RowResult {
  Sweep sweep;
  std::string states;
  std::string silent;
};

// One Table-1 sweep: the same spec at each n, summaries into a Sweep.
Sweep sweep_scenario(const BenchScale& scale, ScenarioSpec spec,
                     const std::vector<std::uint32_t>& sizes,
                     std::uint64_t seed_base) {
  Sweep sweep;
  spec.threads = scale.threads;
  for (std::uint32_t n : sizes) {
    spec.n = n;
    spec.seed = seed_base + n;
    sweep.points.push_back(
        {static_cast<double>(n), run_scenario(spec).summary});
  }
  return sweep;
}

RowResult measure_silent_nstate(const BenchScale& scale,
                                const std::vector<std::uint32_t>& sizes) {
  ScenarioSpec spec;
  spec.protocol = "silent-nstate";
  spec.init = "worst-case";
  spec.engine = "batch";
  spec.strategy = "geometric_skip";
  spec.trials = scale.trials(30);
  RowResult row;
  row.sweep = sweep_scenario(scale, spec, sizes, 11);
  row.states = "n (exact)";
  row.silent = "yes";
  return row;
}

RowResult measure_optimal_silent(const BenchScale& scale,
                                 const std::vector<std::uint32_t>& sizes) {
  RowResult row;
  for (std::uint32_t n : sizes) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = "uniform-random";
    spec.engine = "batch";
    spec.strategy = "geometric_skip";
    spec.trials = scale.trials(n <= 256 ? 8 : 5);
    spec.n = n;
    spec.seed = 21 + n;
    spec.threads = scale.threads;
    row.sweep.points.push_back(
        {static_cast<double>(n), run_scenario(spec).summary});
  }
  const auto p = OptimalSilentParams::standard(1024);
  row.states = "~" + std::to_string((3 * 1024 + p.emax + 1 +
                                     2 * (p.rmax + p.dmax + 1)) /
                                    1024) +
               "n";
  row.silent = "yes";
  return row;
}

RowResult measure_sublinear(const BenchScale& scale, std::uint32_t h,
                            const std::vector<std::uint32_t>& sizes) {
  RowResult row;
  for (std::uint32_t n : sizes) {
    // The H = Theta(log n) row's trees make single interactions expensive
    // to simulate at larger n (the quasi-exponential state is real).
    ScenarioSpec spec;
    spec.protocol = h == 0 ? "sublinear-hlog" : "sublinear-h1";
    spec.init = "uniform-random";
    spec.engine = "array";
    spec.trials = scale.trials(h == 0 ? 3 : (n <= 64 ? 5 : 3));
    spec.n = n;
    spec.seed = 31 + n + h;
    spec.threads = scale.threads;
    row.sweep.points.push_back(
        {static_cast<double>(n), run_scenario(spec).summary});
  }
  row.states = h == 0 ? "exp(O(n^log n) log n)" : "exp(O(n^H) log n)";
  row.silent = "no";
  return row;
}

void print_table1(const BenchScale& scale, BenchReport& report) {
  const std::vector<std::uint32_t> common = scale.sizes({32, 64, 128, 256});
  std::cout << "\n== Table 1 (measured): stabilization parallel time from "
               "adversarial starts ==\n";
  std::cout << "(rows 1-2: batched backend + parallel seed fan-out; rows "
               "3-4: agent array; every cell one ScenarioSpec)\n";

  const RowResult r1 = measure_silent_nstate(scale, common);
  const RowResult r2 = measure_optimal_silent(scale, common);
  const RowResult r3 = measure_sublinear(scale, 0, scale.sizes({8, 16}));
  const RowResult r4 = measure_sublinear(scale, 1, common);
  report_sweep(report, "table1_silent_nstate", "batch", r1.sweep);
  report_sweep(report, "table1_optimal_silent", "batch", r2.sweep);
  report_sweep(report, "table1_sublinear_hlog", "array", r3.sweep);
  report_sweep(report, "table1_sublinear_h1", "array", r4.sweep);

  Table t({"protocol", "paper expected", "paper WHP", "states", "silent",
           "measured mean time @n", "measured exponent"});
  auto cell = [](const RowResult& r) {
    std::string s;
    for (const auto& p : r.sweep.points)
      s += fmt(p.summary.mean, 0) + "@" + fmt(p.n, 0) + " ";
    return s;
  };
  auto slope = [](const RowResult& r) {
    return r.sweep.points.size() >= 2 ? fmt(r.sweep.fit().slope, 2)
                                      : std::string("-");
  };
  t.add_row({"Silent-n-state-SSR [21]", "Theta(n^2)", "Theta(n^2)",
             r1.states, r1.silent, cell(r1), slope(r1)});
  t.add_row({"Optimal-Silent-SSR", "Theta(n)", "Theta(n log n)", r2.states,
             r2.silent, cell(r2), slope(r2)});
  t.add_row({"Sublinear-Time-SSR H=3log2(n)", "Theta(log n)", "Theta(log n)",
             r3.states, r3.silent, cell(r3), slope(r3)});
  t.add_row({"Sublinear-Time-SSR H=1", "Theta(H n^{1/(H+1)})",
             "Theta(log n * n^{1/(H+1)})", r4.states, r4.silent, cell(r4),
             slope(r4)});
  t.print();

  std::cout
      << "\npaper exponents: 2 / 1 / ~0 / 0.5. The sublinear rows carry an "
         "additive reset overhead (~Dmax/2) that biases their fitted\n"
         "exponents downward at laptop n; bench_sublinear isolates the "
         "H-dependent detection component, where the exponents match.\n";

  std::cout << "\n== who wins at which n (mean time, same adversarial "
               "family) ==\n";
  Table w({"n", "Silent-n-state", "Optimal-Silent", "Sublinear H=1",
           "fastest"});
  for (std::size_t i = 0; i < common.size(); ++i) {
    const double a = r1.sweep.points[i].summary.mean;
    const double b = r2.sweep.points[i].summary.mean;
    const double c = r4.sweep.points[i].summary.mean;
    const char* win = a < b && a < c ? "Silent-n-state"
                      : b < c        ? "Optimal-Silent"
                                     : "Sublinear H=1";
    w.add_row({fmt(common[i], 0), fmt(a, 0), fmt(b, 0), fmt(c, 0), win});
  }
  w.print();
  std::cout << "paper: the n-state baseline loses quickly (x4 per doubling); "
               "the crossover between Optimal-Silent (x2 per doubling) and "
               "Sublinear (additive + n^{1/2} growth) moves with the reset "
               "constants\n";
}

// Row 1 at population sizes only the count-based backend can reach: full
// stabilization of the Theta(n^2)-time protocol from the worst-case
// configuration (the batched engine does O(1) work per *effective*
// interaction; the agent array would need ~n^3/2 scheduler draws).
void experiment_row1_scale(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== row 1 at scale (batched backend): Silent-n-state-SSR "
               "full stabilization ==\n";
  Table t({"n", "trials", "E[time] (~n^2/2)", "wall s/run",
           "interactions/run"});
  std::vector<std::uint32_t> sizes =
      scale.sizes({100'000, 1'000'000, 10'000'000});
  if (!scale.full && !scale.smoke) sizes.pop_back();  // 10^7: --full only
  Sweep sweep;
  for (std::uint32_t n : sizes) {
    ScenarioSpec spec;
    spec.protocol = "silent-nstate";
    spec.init = "worst-case";
    spec.engine = "batch";
    spec.strategy = "geometric_skip";
    spec.trials = scale.smoke ? 1 : (n >= 1'000'000 ? 2 : 3);
    spec.n = n;
    spec.seed = 41 + n;
    spec.threads = 1;  // serial: wall s/run is a measurement here
    const ScenarioResult r = run_scenario(spec);
    const double wall = r.wall_seconds / static_cast<double>(r.trials);
    sweep.points.push_back({static_cast<double>(n), r.summary});
    t.add_row({std::to_string(n), std::to_string(r.trials),
               fmt_sci(r.summary.mean), fmt(wall, 2),
               fmt_sci(r.interactions_mean)});
    report.add()
        .set("experiment", "row1_scale")
        .set("backend", "batch")
        .set("strategy", "geometric_skip")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", r.trials)
        .set("parallel_time", r.summary.mean)
        .set("interactions",
             static_cast<std::uint64_t>(r.interactions_mean))
        .set("wall_seconds", wall);
  }
  t.print();
  if (sweep.points.size() >= 2)
    std::cout << "log-log slope (expect ~2): "
              << fmt(sweep.fit().slope, 3) << "\n";
}

// Observation 2.6 at scale: a silent protocol can detect a duplicated rank
// only when the two duplicates meet (expected n(n-1)/2 interactions =
// (n-1)/2 parallel time) — the paper's Omega(n) silent lower bound. The
// keyed-passive batched engine simulates the whole wait as one geometric
// jump, so the sweep reaches n = 10^7.
void experiment_detection_scale(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== Observation 2.6 at scale (batched backend): "
               "duplicate-rank detection latency, Optimal-Silent-SSR ==\n";
  Table t({"n", "trials", "E[detect] measured", "analytic (n-1)/2",
           "wall s/run"});
  const std::vector<std::uint32_t> sizes =
      scale.sizes({10'000, 100'000, 1'000'000, 10'000'000});
  for (std::uint32_t n : sizes) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = "duplicate-rank";
    spec.engine = "batch";
    spec.strategy = "geometric_skip";
    spec.until = "detected";
    spec.trials = scale.smoke ? 1 : (n >= 10'000'000 ? 2 : 5);
    spec.n = n;
    spec.seed = 51 + n;
    spec.threads = 1;  // serial: wall s/run is a measurement here
    const ScenarioResult r = run_scenario(spec);
    const double wall = r.wall_seconds / static_cast<double>(r.trials);
    t.add_row({std::to_string(n), std::to_string(r.trials),
               fmt_sci(r.summary.mean), fmt_sci((n - 1) / 2.0),
               fmt(wall, 2)});
    report.add()
        .set("experiment", "detection_latency")
        .set("backend", "batch")
        .set("strategy", "geometric_skip")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", r.trials)
        .set("parallel_time", r.summary.mean)
        .set("analytic_parallel_time", (n - 1) / 2.0)
        .set("wall_seconds", wall);
  }
  t.print();
  std::cout << "the measured latency is Theta(n) with the analytic constant: "
               "the silent lower bound, reproduced at n = 10^7\n";
}

// ISSUE 3 acceptance: multinomial vs geometric-skip strategy head-to-head
// on the timer-heavy regime of Optimal-Silent-SSR, up to n = 10^6.
//
// Workload: the dormant countdown (the `dormant-mix` initial condition —
// everyone Resetting with delaytimer = Dmax, the post-wave configuration
// of every reset epoch). Every interaction decrements two delay timers, so
// every interaction is effective: the geometric skip degenerates to
// one-by-one simulation whose per-step Fenwick updates walk a 35n-entry
// tree (280 MB at n = 10^6, ~25 DRAM misses per draw), while the
// multinomial strategy samples whole ~0.63 sqrt(n)-interaction batches
// from the cache-resident occupied pool.
//
// The head-to-head runs a fixed parallel-time budget per n (until=ptime;
// running FULL stabilization at n = 10^6 is not an option for either
// strategy — the countdown alone is ~4 n^2 = 4e12 sequential effective
// interactions, days of wall clock for any exact engine). The recorded
// acceptance quantities: multinomial >= 5x faster at n = 10^6, and the
// multinomial wall-vs-n log-log slope <= ~1.6 on this timer-heavy
// workload.
void experiment_strategy_timer_heavy(const BenchScale& scale,
                                     BenchReport& report) {
  const double budget_ptime = scale.smoke ? 0.25 : (scale.quick ? 2.0 : 5.0);
  std::cout << "\n== strategy head-to-head (timer-heavy dormant countdown): "
            << budget_ptime << " parallel time units per run ==\n";
  const std::vector<std::uint32_t> sizes =
      scale.sizes({62'500, 250'000, 1'000'000});
  const char* strategies[] = {"geometric_skip", "multinomial", "auto"};
  Table t({"n", "strategy", "wall s (min)", "interactions", "Minter/s"});
  // Wall clock at sub-second scales swings with ambient memory/frequency
  // state (the neighboring experiments allocate GBs); interleaved
  // repetitions with a per-strategy minimum measure the code, not the
  // machine's mood.
  const int reps = scale.smoke || scale.quick ? 1 : 3;
  std::vector<double> ns;
  std::vector<std::vector<double>> walls(3);
  for (std::uint32_t n : sizes) {
    ns.push_back(static_cast<double>(n));
    double best[3] = {1e300, 1e300, 1e300};
    double interactions[3] = {0, 0, 0};
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t si = 0; si < 3; ++si) {
        ScenarioSpec spec;
        spec.protocol = "optimal-silent";
        spec.init = "dormant-mix";
        spec.engine = "batch";
        spec.strategy = strategies[si];
        spec.until = "ptime";
        spec.horizon_ptime = budget_ptime;
        spec.n = n;
        spec.seed = 97 + n;
        const ScenarioResult r = run_scenario(spec);
        best[si] = std::min(best[si], r.summary.mean);  // run wall, 1 trial
        interactions[si] = r.interactions_mean;
      }
    }
    for (std::size_t si = 0; si < 3; ++si) {
      walls[si].push_back(best[si]);
      t.add_row({std::to_string(n), strategies[si], fmt(best[si], 3),
                 fmt_sci(interactions[si]),
                 fmt(interactions[si] / best[si] / 1e6, 1)});
      report.add()
          .set("experiment", "strategy_timer_heavy")
          .set("backend", "batch")
          .set("strategy", strategies[si])
          .set("n", static_cast<std::uint64_t>(n))
          .set("parallel_time", budget_ptime)
          .set("interactions", static_cast<std::uint64_t>(interactions[si]))
          .set("wall_seconds", best[si]);
    }
  }
  t.print();
  if (ns.size() >= 2) {
    for (std::size_t si = 0; si < 3; ++si) {
      const LinearFit f = fit_power_law(ns, walls[si]);
      std::cout << "wall ~ n^" << fmt(f.slope, 2) << " for "
                << strategies[si] << " (R^2 = " << fmt(f.r2, 3) << ")\n";
      report.add()
          .set("experiment", "strategy_timer_heavy_slope")
          .set("backend", "batch")
          .set("strategy", strategies[si])
          .set("slope", f.slope)
          .set("r2", f.r2);
    }
  }
  const double speedup = walls[0].back() / walls[1].back();
  const bool gate_active = !scale.smoke && !scale.quick;
  if (gate_active) {
    std::cout << (speedup >= 5.0 ? "PASS" : "FAIL")
              << ": multinomial strategy " << fmt(speedup, 1)
              << "x faster than geometric_skip at n = " << sizes.back()
              << " (>= 5x required)\n";
  } else {
    std::cout << "multinomial strategy " << fmt(speedup, 1)
              << "x faster than geometric_skip at n = " << sizes.back()
              << " (acceptance gate needs the default budget)\n";
  }
  BenchRecord& rec = report.add();
  rec.set("experiment", "strategy_acceptance")
      .set("backend", "batch")
      .set("n", static_cast<std::uint64_t>(sizes.back()))
      .set("speedup_multinomial_vs_geometric", speedup);
  if (gate_active) rec.set("acceptance_pass", speedup >= 5.0);
}

// Full stabilization (uniform-random adversarial start) strategy face-off
// at the largest feasible n: the same runs the Table 1 sweep does, wall
// clock per strategy. Stabilization times agree across strategies (the
// cross-strategy CI tests enforce it); the wall clock shows where each
// strategy earns its keep over a whole run that crosses timer-heavy *and*
// silent-heavy phases (auto switches between them on the exact
// active-weight density).
void experiment_strategy_full_stabilization(const BenchScale& scale,
                                            BenchReport& report) {
  const std::uint32_t n = scale.smoke ? 256 : (scale.full ? 8192 : 4096);
  std::cout << "\n== full stabilization strategy face-off (n = " << n
            << ", uniform-random start) ==\n";
  Table t({"strategy", "trials", "wall s/run", "E[time]"});
  for (const char* strategy : {"geometric_skip", "multinomial", "auto"}) {
    ScenarioSpec spec;
    spec.protocol = "optimal-silent";
    spec.init = "uniform-random";
    spec.engine = "batch";
    spec.strategy = strategy;
    spec.trials = scale.smoke ? 1 : 4;
    spec.n = n;
    spec.seed = 71 + n;
    spec.threads = 1;  // serial: this experiment measures wall clock
    const ScenarioResult r = run_scenario(spec);
    const double wall = r.wall_seconds / static_cast<double>(r.trials);
    t.add_row({strategy, std::to_string(r.trials), fmt(wall, 3),
               fmt(r.summary.mean, 0)});
    report.add()
        .set("experiment", "row2_full_stabilization_strategy")
        .set("backend", "batch")
        .set("strategy", strategy)
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", r.trials)
        .set("parallel_time", r.summary.mean)
        .set("wall_seconds", wall);
  }
  t.print();
}

// ISSUE 2 acceptance: the same n = 10^6 Optimal-Silent-SSR run on both
// engines, wall-clock measured, >= 10x required. Workload: simulate T
// parallel time units from the duplicate-rank configuration (the stable
// regime a deployed silent protocol spends its life in). Identical
// stochastic process and horizon on both engines — the two ScenarioSpecs
// differ only in the engine field; the batched backend geometric-skips the
// null stretches, the agent array cannot.
void experiment_backend_acceptance(const BenchScale& scale,
                                   BenchReport& report) {
  const std::uint32_t n = scale.smoke ? 1024 : 1'000'000;
  const double budget_time = scale.smoke ? 50 : (scale.quick ? 200 : 1000);
  std::cout << "\n== backend acceptance (n = " << n << "): " << budget_time
            << " parallel time units from the duplicate-rank start ==\n";
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "duplicate-rank";
  spec.until = "ptime";
  spec.horizon_ptime = budget_time;
  spec.n = n;
  spec.seed = 7;

  spec.engine = "array";
  const ScenarioResult array_r = run_scenario(spec);
  const double array_s = array_r.summary.mean;
  const double array_rate = array_r.interactions_mean / array_s;

  spec.engine = "batch";
  spec.strategy = "geometric_skip";
  const ScenarioResult batch_r = run_scenario(spec);
  const double batch_s = batch_r.summary.mean;

  const double speedup = array_s / batch_s;
  Table t({"backend", "wall s", "interactions simulated"});
  t.add_row({"agent array", fmt(array_s, 3), fmt_sci(array_r.interactions_mean)});
  t.add_row({"batched", fmt(batch_s, 3), fmt_sci(batch_r.interactions_mean)});
  t.print();
  if (scale.smoke || scale.quick) {
    std::cout << "batched backend " << fmt(speedup, 1)
              << "x faster (acceptance check needs the default budget: "
                 "--quick/--smoke shrink the horizon below the batched "
                 "engine's per-run overheads)\n";
  } else {
    std::cout << (speedup >= 10.0 ? "PASS" : "FAIL") << ": batched backend "
              << fmt(speedup, 1) << "x faster (>= 10x required at n = 10^6)\n";
  }
  // Achieved simulation parallel time = interactions / n: the batched
  // engine may overshoot the requested budget (a final geometric jump is
  // real simulated time), and the recorded field must reflect what
  // actually ran so --strict drift checks can fire on it.
  report.add()
      .set("experiment", "acceptance_fixed_budget")
      .set("backend", "array")
      .set("n", static_cast<std::uint64_t>(n))
      .set("parallel_time",
           array_r.interactions_mean / static_cast<double>(n))
      .set("interactions",
           static_cast<std::uint64_t>(array_r.interactions_mean))
      .set("wall_seconds", array_s);
  {
    BenchRecord& rec = report.add();
    rec.set("experiment", "acceptance_fixed_budget")
        .set("backend", "batch")
        .set("strategy", "geometric_skip")
        .set("n", static_cast<std::uint64_t>(n))
        .set("parallel_time",
             batch_r.interactions_mean / static_cast<double>(n))
        .set("interactions",
             static_cast<std::uint64_t>(batch_r.interactions_mean))
        .set("wall_seconds", batch_s)
        .set("speedup_vs_array", speedup)
        .set("mode", scale.smoke   ? "smoke"
                     : scale.quick ? "quick"
                     : scale.full  ? "full"
                                   : "default");
    // The >= 10x acceptance verdict is only meaningful at the default (or
    // --full) budget; smoke/quick shrink the horizon below the batched
    // engine's fixed construction cost, and perf tooling must not read a
    // failing gate out of a CI smoke artifact.
    if (!scale.smoke && !scale.quick)
      rec.set("acceptance_pass", speedup >= 10.0);
  }

  // Run-to-detection at the same n: the batched engine completes the full
  // expected n(n-1)/2-interaction wait outright; the agent array's time for
  // the identical run is projected from its measured per-interaction rate
  // (labeled as a projection — at n = 10^6 the direct run would take hours).
  spec.until = "detected";
  spec.horizon_ptime = 0;
  spec.seed = 11;
  const ScenarioResult detect_r = run_scenario(spec);
  const double detect_s = detect_r.wall_seconds;
  const double array_projected_s = detect_r.interactions_mean / array_rate;
  std::cout << "run-to-detection at n = " << n << ": batched "
            << fmt(detect_s, 3) << " s for "
            << fmt_sci(detect_r.interactions_mean)
            << " interactions; agent array projected "
            << fmt(array_projected_s, 0) << " s at its measured "
            << fmt_sci(array_rate) << " interactions/s ("
            << fmt_sci(array_projected_s / detect_s)
            << "x, projection)\n";
  report.add()
      .set("experiment", "run_to_detection")
      .set("backend", "batch")
      .set("n", static_cast<std::uint64_t>(n))
      .set("interactions",
           static_cast<std::uint64_t>(detect_r.interactions_mean))
      .set("parallel_time", detect_r.summary.mean)
      .set("wall_seconds", detect_s)
      .set("array_projected_seconds", array_projected_s)
      .set("array_projected", true);
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  ppsim::BenchReport report("table1");
  std::cout << "=== bench_table1: the paper's Table 1, measured "
               "(Scenario API over the unified Engine API) ===\n";
  // The strategy head-to-head runs before the n = 10^7 detection sweep:
  // the latter's multi-GB engines perturb wall clocks for a while after.
  ppsim::print_table1(scale, report);
  ppsim::experiment_row1_scale(scale, report);
  ppsim::experiment_strategy_timer_heavy(scale, report);
  ppsim::experiment_strategy_full_stabilization(scale, report);
  ppsim::experiment_detection_scale(scale, report);
  ppsim::experiment_backend_acceptance(scale, report);
  const std::string path = report.write();
  if (!path.empty()) std::cout << "\nmachine-readable results: " << path << "\n";
  return 0;
}
