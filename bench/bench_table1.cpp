// Experiment T1 (see DESIGN.md): the paper's Table 1 — time and space of
// every self-stabilizing ranking protocol, side by side.
//
//   protocol                    expected time   WHP time        states  silent
//   Silent-n-state-SSR [21]     Theta(n^2)      Theta(n^2)      n       yes
//   Optimal-Silent-SSR          Theta(n)        Theta(n log n)  O(n)    yes
//   Sublinear-Time-SSR  H=logn  Theta(log n)    Theta(log n)    exp     no
//   Sublinear-Time-SSR  H=const Theta(H n^{1/(H+1)})            exp     no
//
// This binary regenerates the table empirically: per-protocol stabilization
// times from the same adversarial starting families at a range of n, the
// measured growth exponent next to the paper's, and the state accounting.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/adversary.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "protocols/silent_nstate_fast.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

struct RowResult {
  Sweep sweep;
  std::string states;
  std::string silent;
};

RowResult measure_silent_nstate(const BenchScale& scale,
                                const std::vector<std::uint32_t>& sizes) {
  RowResult row;
  for (std::uint32_t n : sizes) {
    const auto trials = scale.trials(30);
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i)
      xs.push_back(SilentNStateFast(n)
                       .run(silent_nstate_worst_counts(n),
                            derive_seed(11 + n, i))
                       .parallel_time);
    row.sweep.points.push_back({static_cast<double>(n), summarize(xs)});
  }
  row.states = "n (exact)";
  row.silent = "yes";
  return row;
}

RowResult measure_optimal_silent(const BenchScale& scale,
                                 const std::vector<std::uint32_t>& sizes) {
  RowResult row;
  for (std::uint32_t n : sizes) {
    const auto trials = scale.trials(n <= 256 ? 8 : 5);
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const auto params = OptimalSilentParams::standard(n);
      OptimalSilentSSR proto(params);
      auto init = optimal_silent_config(
          params, OsAdversary::kUniformRandom, derive_seed(21 + n, i));
      RunOptions opts;
      opts.max_interactions =
          static_cast<std::uint64_t>(n) * n * 2000 + (1ull << 24);
      const RunResult r = run_until_ranked(proto, std::move(init),
                                           derive_seed(22 + n, i), opts);
      xs.push_back(r.stabilization_ptime);
    }
    row.sweep.points.push_back({static_cast<double>(n), summarize(xs)});
  }
  const auto p = OptimalSilentParams::standard(1024);
  row.states = "~" + std::to_string((3 * 1024 + p.emax + 1 +
                                     2 * (p.rmax + p.dmax + 1)) /
                                    1024) +
               "n";
  row.silent = "yes";
  return row;
}

RowResult measure_sublinear(const BenchScale& scale, std::uint32_t h,
                            const std::vector<std::uint32_t>& sizes) {
  RowResult row;
  for (std::uint32_t n : sizes) {
    // The H = Theta(log n) row's trees make single interactions expensive
    // to simulate at larger n (the quasi-exponential state is real).
    const auto trials = scale.trials(h == 0 ? 3 : (n <= 64 ? 5 : 3));
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const auto p = h == 0 ? SublinearParams::log_time(n)
                            : SublinearParams::constant_h(n, h);
      SublinearTimeSSR proto(p);
      auto init = sublinear_config(p, SlAdversary::kUniformRandom,
                                   derive_seed(31 + n + h, i));
      RunOptions opts;
      const std::uint64_t per_epoch = static_cast<std::uint64_t>(p.n) *
                                      (6ull * p.th + 6ull * p.dmax + 400);
      opts.max_interactions = 120ull * per_epoch + (1ull << 22);
      opts.tail_ptime = 0.75 * p.th + 10;
      const RunResult r = run_until_ranked(proto, std::move(init),
                                           derive_seed(32 + n + h, i), opts);
      xs.push_back(r.stabilization_ptime);
    }
    row.sweep.points.push_back({static_cast<double>(n), summarize(xs)});
  }
  row.states = h == 0 ? "exp(O(n^log n) log n)" : "exp(O(n^H) log n)";
  row.silent = "no";
  return row;
}

void print_table1(const BenchScale& scale) {
  const std::vector<std::uint32_t> common = {32, 64, 128, 256};
  std::cout << "\n== Table 1 (measured): stabilization parallel time from "
               "adversarial starts ==\n";

  const RowResult r1 = measure_silent_nstate(scale, common);
  const RowResult r2 = measure_optimal_silent(scale, common);
  const RowResult r3 = measure_sublinear(scale, 0, {8, 16});
  const RowResult r4 = measure_sublinear(scale, 1, common);

  Table t({"protocol", "paper expected", "paper WHP", "states", "silent",
           "measured mean time @n", "measured exponent"});
  auto cell = [](const RowResult& r) {
    std::string s;
    for (const auto& p : r.sweep.points)
      s += fmt(p.summary.mean, 0) + "@" + fmt(p.n, 0) + " ";
    return s;
  };
  t.add_row({"Silent-n-state-SSR [21]", "Theta(n^2)", "Theta(n^2)",
             r1.states, r1.silent, cell(r1), fmt(r1.sweep.fit().slope, 2)});
  t.add_row({"Optimal-Silent-SSR", "Theta(n)", "Theta(n log n)", r2.states,
             r2.silent, cell(r2), fmt(r2.sweep.fit().slope, 2)});
  t.add_row({"Sublinear-Time-SSR H=3log2(n)", "Theta(log n)", "Theta(log n)",
             r3.states, r3.silent, cell(r3), fmt(r3.sweep.fit().slope, 2)});
  t.add_row({"Sublinear-Time-SSR H=1", "Theta(H n^{1/(H+1)})",
             "Theta(log n * n^{1/(H+1)})", r4.states, r4.silent, cell(r4),
             fmt(r4.sweep.fit().slope, 2)});
  t.print();

  std::cout
      << "\npaper exponents: 2 / 1 / ~0 / 0.5. The sublinear rows carry an "
         "additive reset overhead (~Dmax/2) that biases their fitted\n"
         "exponents downward at laptop n; bench_sublinear isolates the "
         "H-dependent detection component, where the exponents match.\n";

  std::cout << "\n== who wins at which n (mean time, same adversarial "
               "family) ==\n";
  Table w({"n", "Silent-n-state", "Optimal-Silent", "Sublinear H=1",
           "fastest"});
  for (std::size_t i = 0; i < common.size(); ++i) {
    const double a = r1.sweep.points[i].summary.mean;
    const double b = r2.sweep.points[i].summary.mean;
    const double c = r4.sweep.points[i].summary.mean;
    const char* win = a < b && a < c ? "Silent-n-state"
                      : b < c        ? "Optimal-Silent"
                                     : "Sublinear H=1";
    w.add_row({fmt(common[i], 0), fmt(a, 0), fmt(b, 0), fmt(c, 0), win});
  }
  w.print();
  std::cout << "paper: the n-state baseline loses quickly (x4 per doubling); "
               "the crossover between Optimal-Silent (x2 per doubling) and "
               "Sublinear (additive + n^{1/2} growth) moves with the reset "
               "constants\n";
}

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_table1: the paper's Table 1, measured ===\n";
  ppsim::print_table1(scale);
  return 0;
}
