// Experiment F2 (see DESIGN.md): Figure 2 — how interaction-history trees
// are built and checked.
//
// Replays both executions from the paper's Figure 2 (four agents a, b, c, d;
// left: a-b, b-c, c-d; right: a-b, b-c, a-b again, c-d), renders every
// agent's tree after each interaction, and walks through the
// Check-Path-Consistency call that the figure's caption narrates. Also
// microbenchmarks the tree kernels (graft, detection DFS) under load.
//
// Deliberately NOT on the Scenario API: both measurements are
// single-execution replays of a fixed four-agent interaction sequence and
// per-call kernel micros, not population-scale experiment cells — no
// registered (protocol, init, until) triple covers them.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "analysis/bench_report.h"
#include "common/cli.h"
#include "common/name.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "protocols/collision_tree.h"

namespace ppsim {
namespace {

// Human-readable agent names (rendered as letters like the figure).
Name agent_name(char c) {
  return Name::from_bits(static_cast<std::uint64_t>(c - 'a' + 1), 6);
}

char letter_of(const Name& n) {
  for (char c = 'a'; c <= 'z'; ++c)
    if (agent_name(c) == n) return c;
  return '?';
}

void render(const HistoryNode& node, const std::string& indent,
            std::vector<Name>& path, std::int64_t sigma, std::int64_t ops,
            std::uint32_t depth_left) {
  std::cout << indent << letter_of(node.name) << "\n";
  if (depth_left == 0) return;
  path.push_back(node.name);
  for (const auto& e : node.children) {
    bool repeated = false;
    for (const auto& anc : path)
      if (anc == e.child->name) repeated = true;
    if (repeated) continue;
    const std::int64_t timer = std::max<std::int64_t>(
        0, e.expiry + sigma - ops);
    std::cout << indent << "|-- sync=" << e.sync << " timer=" << timer
              << " --> ";
    std::vector<Name> sub_path = path;
    render(*e.child, indent + "    ", sub_path, sigma + e.shift, ops,
           depth_left - 1);
  }
  path.pop_back();
}

void render_tree(const char* label, const HistoryTree& t, std::uint32_t h) {
  std::cout << label << "'s tree:\n";
  std::vector<Name> path;
  render(*t.root(), "  ", path, 0, static_cast<std::int64_t>(t.ops()), h);
}

std::uint64_t interact(const CollisionDetector& det, HistoryTree& x,
                       HistoryTree& y, std::uint64_t step) {
  CollisionDetectorStats det_stats;
  Rng rng(1000 + step * 7919);
  const bool collision = det.detect_and_update(x, y, rng, det_stats);
  if (collision) std::cout << "  !! collision declared\n";
  return x.root()->children.back().sync;
}

void figure2(bool right_variant, BenchReport& report) {
  std::cout << "\n== F2: Figure 2, " << (right_variant ? "right" : "left")
            << " execution ==\n";
  CollisionDetectorParams p;
  p.depth_h = 3;
  p.smax = 9;  // single-digit sync values, like the figure
  p.th = 1000;
  p.direct_check = true;
  CollisionDetector det(p);
  CollisionDetectorStats det_stats;

  HistoryTree a, b, c, d;
  a.reset(agent_name('a'));
  b.reset(agent_name('b'));
  c.reset(agent_name('c'));
  d.reset(agent_name('d'));

  std::uint64_t step = right_variant ? 50 : 0;
  std::cout << "\na-b interact; generate sync value "
            << interact(det, a, b, ++step) << ":\n";
  render_tree("a", a, 3);
  render_tree("b", b, 3);

  std::cout << "\nb-c interact; generate sync value "
            << interact(det, b, c, ++step) << ":\n";
  render_tree("b", b, 3);
  render_tree("c", c, 3);

  if (right_variant) {
    std::cout << "\na-b interact again; generate sync value "
              << interact(det, a, b, ++step) << ":\n";
    render_tree("a", a, 3);
    render_tree("b", b, 3);
  }

  std::cout << "\nc-d interact; generate sync value "
            << interact(det, c, d, ++step) << ":\n";
  render_tree("c", c, 3);
  render_tree("d", d, 3);

  // The caption's check: d holds the path d -> c -> b -> a; when d meets a,
  // Check-Path-Consistency(a, P) must return True (no false collision).
  std::cout << "\nd-a interact (the caption's consistency check):\n";
  Rng rng(4242);
  const bool collision = det.detect_and_update(d, a, rng, det_stats);
  std::cout << "  Detect-Name-Collision returned "
            << (collision ? "True (collision!)" : "False (consistent)")
            << "\n";
  report.add()
      .set("experiment",
           right_variant ? "figure2_right" : "figure2_left")
      .set("backend", "tree")
      .set("false_collision", collision)
      .set("paths_checked", det_stats.paths_checked)
      .set("nodes_visited", det_stats.nodes_visited);
  if (right_variant) {
    std::cout << "  (the first reverse edge a->b carries the regenerated "
                 "sync and does not match; the second edge b->c does — "
                 "exactly the figure's narrative)\n";
  } else {
    std::cout << "  (a's reverse suffix a->b matches the path's final sync "
                 "at the first edge)\n";
  }
}

// --- microbenchmarks of the tree kernels. ---

void BM_Graft(benchmark::State& state) {
  CollisionDetectorParams p;
  p.depth_h = static_cast<std::uint32_t>(state.range(0));
  p.smax = 1 << 20;
  p.th = 64;
  p.prune_window = 10 * p.th;
  CollisionDetector det(p);
  CollisionDetectorStats det_stats;
  constexpr std::uint32_t kAgents = 64;
  std::vector<HistoryTree> trees(kAgents);
  for (std::uint32_t i = 0; i < kAgents; ++i)
    trees[i].reset(Name::from_bits(i + 1, 18));
  Rng rng(7);
  UniformScheduler sched(kAgents);
  for (auto _ : state) {
    const AgentPair pr = sched.next(rng);
    benchmark::DoNotOptimize(det.detect_and_update(
        trees[pr.initiator], trees[pr.responder], rng, det_stats));
  }
  state.counters["dfs_nodes_per_call"] =
      static_cast<double>(det_stats.nodes_visited) /
      std::max<std::uint64_t>(1, det_stats.calls);
}
// Fixed iteration count: the trees grow as the benchmark runs (that growth
// IS the measured phenomenon), so letting google-benchmark auto-scale the
// iteration count makes deep-H runs quadratically slower with no extra
// information.
BENCHMARK(BM_Graft)->Arg(1)->Arg(2)->Iterations(2000);
BENCHMARK(BM_Graft)->Arg(4)->Iterations(400);  // tree growth is super-linear
BENCHMARK(BM_Graft)->Arg(8)->Iterations(100);  // ... and worse with depth

void BM_LiveNodeCount(benchmark::State& state) {
  CollisionDetectorParams p;
  p.depth_h = 4;
  p.smax = 1 << 20;
  p.th = 64;
  p.prune_window = 10 * p.th;  // bounded trees: the deployed configuration
  CollisionDetector det(p);
  CollisionDetectorStats det_stats;
  constexpr std::uint32_t kAgents = 32;
  std::vector<HistoryTree> trees(kAgents);
  for (std::uint32_t i = 0; i < kAgents; ++i)
    trees[i].reset(Name::from_bits(i + 1, 18));
  Rng rng(7);
  UniformScheduler sched(kAgents);
  for (int i = 0; i < 3000; ++i) {
    const AgentPair pr = sched.next(rng);
    det.detect_and_update(trees[pr.initiator], trees[pr.responder], rng,
                          det_stats);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(live_node_count(trees[0], 4));
}
BENCHMARK(BM_LiveNodeCount);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_fig2_history_trees: Figure 2 / Protocols 7-8 ===\n";
  ppsim::BenchReport report("fig2_history_trees");
  ppsim::figure2(/*right_variant=*/false, report);
  ppsim::figure2(/*right_variant=*/true, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  if (scale.micro) {
    int bench_argc = 1;
    benchmark::Initialize(&bench_argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  // Default run includes a short micro section so the figure binary also
  // reports kernel costs; --smoke (and --quick) cap the measuring time so
  // the CI gate finishes in seconds (BM_Graft's deepest trees cost ~25 ms
  // per iteration).
  char arg0[] = "bench_fig2";
  char arg1[] = "--benchmark_min_time=0.01";
  std::vector<char*> bench_argv = {arg0};
  if (scale.quick) bench_argv.push_back(arg1);
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
