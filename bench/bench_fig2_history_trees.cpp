// Experiment F2 (see DESIGN.md): Figure 2 — how interaction-history trees
// are built and checked.
//
// Replays both executions from the paper's Figure 2 (four agents a, b, c, d;
// left: a-b, b-c, c-d; right: a-b, b-c, a-b again, c-d), renders every
// agent's tree after each interaction, and walks through the
// Check-Path-Consistency call that the figure's caption narrates. Also
// microbenchmarks the tree kernels (graft, detection DFS) under load.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "common/name.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "protocols/collision_tree.h"

namespace ppsim {
namespace {

// Human-readable agent names (rendered as letters like the figure).
Name agent_name(char c) {
  return Name::from_bits(static_cast<std::uint64_t>(c - 'a' + 1), 6);
}

char letter_of(const Name& n) {
  for (char c = 'a'; c <= 'z'; ++c)
    if (agent_name(c) == n) return c;
  return '?';
}

void render(const HistoryNode& node, const std::string& indent,
            std::vector<Name>& path, std::int64_t sigma, std::int64_t ops,
            std::uint32_t depth_left) {
  std::cout << indent << letter_of(node.name) << "\n";
  if (depth_left == 0) return;
  path.push_back(node.name);
  for (const auto& e : node.children) {
    bool repeated = false;
    for (const auto& anc : path)
      if (anc == e.child->name) repeated = true;
    if (repeated) continue;
    const std::int64_t timer = std::max<std::int64_t>(
        0, e.expiry + sigma - ops);
    std::cout << indent << "|-- sync=" << e.sync << " timer=" << timer
              << " --> ";
    std::vector<Name> sub_path = path;
    render(*e.child, indent + "    ", sub_path, sigma + e.shift, ops,
           depth_left - 1);
  }
  path.pop_back();
}

void render_tree(const char* label, const HistoryTree& t, std::uint32_t h) {
  std::cout << label << "'s tree:\n";
  std::vector<Name> path;
  render(*t.root(), "  ", path, 0, static_cast<std::int64_t>(t.ops()), h);
}

std::uint64_t interact(CollisionDetector& det, HistoryTree& x,
                       HistoryTree& y, std::uint64_t step) {
  Rng rng(1000 + step * 7919);
  const bool collision = det.detect_and_update(x, y, rng);
  if (collision) std::cout << "  !! collision declared\n";
  return x.root()->children.back().sync;
}

void figure2(bool right_variant) {
  std::cout << "\n== F2: Figure 2, " << (right_variant ? "right" : "left")
            << " execution ==\n";
  CollisionDetectorParams p;
  p.depth_h = 3;
  p.smax = 9;  // single-digit sync values, like the figure
  p.th = 1000;
  p.direct_check = true;
  CollisionDetector det(p);

  HistoryTree a, b, c, d;
  a.reset(agent_name('a'));
  b.reset(agent_name('b'));
  c.reset(agent_name('c'));
  d.reset(agent_name('d'));

  std::uint64_t step = right_variant ? 50 : 0;
  std::cout << "\na-b interact; generate sync value "
            << interact(det, a, b, ++step) << ":\n";
  render_tree("a", a, 3);
  render_tree("b", b, 3);

  std::cout << "\nb-c interact; generate sync value "
            << interact(det, b, c, ++step) << ":\n";
  render_tree("b", b, 3);
  render_tree("c", c, 3);

  if (right_variant) {
    std::cout << "\na-b interact again; generate sync value "
              << interact(det, a, b, ++step) << ":\n";
    render_tree("a", a, 3);
    render_tree("b", b, 3);
  }

  std::cout << "\nc-d interact; generate sync value "
            << interact(det, c, d, ++step) << ":\n";
  render_tree("c", c, 3);
  render_tree("d", d, 3);

  // The caption's check: d holds the path d -> c -> b -> a; when d meets a,
  // Check-Path-Consistency(a, P) must return True (no false collision).
  std::cout << "\nd-a interact (the caption's consistency check):\n";
  Rng rng(4242);
  const bool collision = det.detect_and_update(d, a, rng);
  std::cout << "  Detect-Name-Collision returned "
            << (collision ? "True (collision!)" : "False (consistent)")
            << "\n";
  if (right_variant) {
    std::cout << "  (the first reverse edge a->b carries the regenerated "
                 "sync and does not match; the second edge b->c does — "
                 "exactly the figure's narrative)\n";
  } else {
    std::cout << "  (a's reverse suffix a->b matches the path's final sync "
                 "at the first edge)\n";
  }
}

// --- microbenchmarks of the tree kernels. ---

void BM_Graft(benchmark::State& state) {
  CollisionDetectorParams p;
  p.depth_h = static_cast<std::uint32_t>(state.range(0));
  p.smax = 1 << 20;
  p.th = 64;
  p.prune_window = 10 * p.th;
  CollisionDetector det(p);
  constexpr std::uint32_t kAgents = 64;
  std::vector<HistoryTree> trees(kAgents);
  for (std::uint32_t i = 0; i < kAgents; ++i)
    trees[i].reset(Name::from_bits(i + 1, 18));
  Rng rng(7);
  UniformScheduler sched(kAgents);
  for (auto _ : state) {
    const AgentPair pr = sched.next(rng);
    benchmark::DoNotOptimize(det.detect_and_update(
        trees[pr.initiator], trees[pr.responder], rng));
  }
  state.counters["dfs_nodes_per_call"] =
      static_cast<double>(det.stats().nodes_visited) /
      std::max<std::uint64_t>(1, det.stats().calls);
}
BENCHMARK(BM_Graft)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LiveNodeCount(benchmark::State& state) {
  CollisionDetectorParams p;
  p.depth_h = 4;
  p.smax = 1 << 20;
  p.th = 64;
  CollisionDetector det(p);
  constexpr std::uint32_t kAgents = 32;
  std::vector<HistoryTree> trees(kAgents);
  for (std::uint32_t i = 0; i < kAgents; ++i)
    trees[i].reset(Name::from_bits(i + 1, 18));
  Rng rng(7);
  UniformScheduler sched(kAgents);
  for (int i = 0; i < 20000; ++i) {
    const AgentPair pr = sched.next(rng);
    det.detect_and_update(trees[pr.initiator], trees[pr.responder], rng);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(live_node_count(trees[0], 4));
}
BENCHMARK(BM_LiveNodeCount);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  std::cout << "=== bench_fig2_history_trees: Figure 2 / Protocols 7-8 ===\n";
  ppsim::figure2(/*right_variant=*/false);
  ppsim::figure2(/*right_variant=*/true);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      return 0;
    }
  }
  // Default run includes a short micro section so the figure binary also
  // reports kernel costs.
  int bench_argc = 1;
  char arg0[] = "bench_fig2";
  char* bench_argv[] = {arg0};
  benchmark::Initialize(&bench_argc, bench_argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
