// Experiment T2.4 (see DESIGN.md): the Theta(n^2)-time behavior of
// Silent-n-state-SSR [Cai-Izumi-Wada], Protocol 1.
//
//   * worst-case configuration: E[interactions] = (n-1) * C(n,2) exactly;
//     parallel time grows x4 per doubling (slope 2 in log-log)
//   * random configurations: same order, smaller constant
//   * the accelerated (exact-distribution) simulator is validated against
//     the direct one
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/adversary.h"
#include "analysis/barrier.h"
#include "analysis/bench_report.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "protocols/silent_nstate.h"
#include "protocols/silent_nstate_fast.h"

namespace ppsim {
namespace {

void experiment_worst_case(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T2.4: worst-case stabilization time (accelerated exact "
               "simulator) ==\n";
  Table t({"n", "mean time", "p95 time", "mean inter.", "(n-1)C(n,2)",
           "ratio", "x vs n/2"});
  Sweep sweep;
  for (std::uint32_t n : scale.sizes({64, 128, 256, 512, 1024, 2048, 4096})) {
    const auto trials = scale.trials(n <= 1024 ? 60 : 25);
    std::vector<double> times, inters;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const auto r = SilentNStateFast(n).run(silent_nstate_worst_counts(n),
                                             derive_seed(100 + n, i));
      times.push_back(r.parallel_time);
      inters.push_back(static_cast<double>(r.interactions));
    }
    const Summary st = summarize(times);
    const Summary si = summarize(inters);
    const double exact = silent_nstate_worst_expected_interactions(n);
    sweep.points.push_back({static_cast<double>(n), st});
    t.add_row({std::to_string(n), fmt(st.mean, 0), fmt(st.p95, 0),
               fmt(si.mean, 0), fmt(exact, 0), fmt(si.mean / exact, 3),
               fmt(st.mean / (n / 2.0), 2)});
    report.add()
        .set("experiment", "worst_case")
        .set("backend", "fast")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", st.mean)
        .set("interactions", si.mean)
        .set("expected_interactions", exact);
  }
  t.print();
  if (sweep.points.size() < 2) return;
  const LinearFit f = sweep.fit();
  std::cout << "log-log fit: time ~ n^" << fmt(f.slope, 3)
            << "  (paper: Theta(n^2), exponent 2)\n";
}

void experiment_random_configs(const BenchScale& scale) {
  std::cout << "\n== T2.4: stabilization from uniformly random "
               "configurations ==\n";
  Table t({"n", "mean time", "p95 time", "worst-case mean", "random/worst"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto trials = scale.trials(60);
    std::vector<double> times;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const auto cfg = silent_nstate_random_config(n, derive_seed(200 + n, i));
      const auto counts = rank_counts(cfg, n);
      times.push_back(
          SilentNStateFast(n).run(counts, derive_seed(300 + n, i))
              .parallel_time);
    }
    const Summary s = summarize(times);
    std::vector<double> worst;
    for (std::uint32_t i = 0; i < trials; ++i)
      worst.push_back(SilentNStateFast(n)
                          .run(silent_nstate_worst_counts(n),
                               derive_seed(400 + n, i))
                          .parallel_time);
    const Summary w = summarize(worst);
    t.add_row({std::to_string(n), fmt(s.mean, 0), fmt(s.p95, 0),
               fmt(w.mean, 0), fmt(s.mean / w.mean, 3)});
  }
  t.print();
  std::cout << "random starts are Theta(n^2) as well, with a smaller "
               "constant\n";
}

void experiment_validation(const BenchScale& scale) {
  std::cout << "\n== validation: direct vs accelerated simulator (exact "
               "distribution) ==\n";
  Table t({"n", "direct mean inter.", "fast mean inter.", "diff/ci"});
  for (std::uint32_t n : scale.sizes({16, 32})) {
    const auto trials = scale.trials(200);
    RunOptions opts;
    opts.max_interactions = 1ull << 32;
    std::vector<double> direct, fast;
    for (std::uint32_t i = 0; i < trials; ++i) {
      const RunResult r =
          run_until_ranked(SilentNStateSSR(n), silent_nstate_worst_config(n),
                           derive_seed(500 + n, i), opts);
      direct.push_back(static_cast<double>(r.interactions));
      fast.push_back(static_cast<double>(
          SilentNStateFast(n)
              .run(silent_nstate_worst_counts(n), derive_seed(600 + n, i))
              .interactions));
    }
    const Summary sd = summarize(direct);
    const Summary sf = summarize(fast);
    t.add_row({std::to_string(n), fmt(sd.mean, 0), fmt(sf.mean, 0),
               fmt(std::abs(sd.mean - sf.mean) / (sd.ci95 + sf.ci95), 2)});
  }
  t.print();
  std::cout << "diff/ci < ~2 indicates statistically identical means\n";
}

void BM_SilentNStateInteraction(benchmark::State& state) {
  SilentNStateSSR proto(1024);
  Rng rng(1);
  SilentNStateSSR::State a{5}, b{5};
  for (auto _ : state) {
    proto.interact(a, b, rng);
    benchmark::DoNotOptimize(b.rank);
  }
}
BENCHMARK(BM_SilentNStateInteraction);

void BM_FastSimulatorWorstCase(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SilentNStateFast(n).run(silent_nstate_worst_counts(n), seed++));
  }
}
BENCHMARK(BM_FastSimulatorWorstCase)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_silent_nstate: Protocol 1 / Theorem 2.4 "
               "(Table 1 row 1) ===\n";
  ppsim::BenchReport report("silent_nstate");
  ppsim::experiment_worst_case(scale, report);
  ppsim::experiment_random_configs(scale);
  ppsim::experiment_validation(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
