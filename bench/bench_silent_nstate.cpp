// Experiment T2.4 (see DESIGN.md): the Theta(n^2)-time behavior of
// Silent-n-state-SSR [Cai-Izumi-Wada], Protocol 1 — migrated onto the
// Scenario API (ISSUE 5 satellite; ROADMAP named this mechanical
// follow-up). Every sweep cell is one ScenarioSpec executed by the
// registry; the hand-rolled measurement loops are gone and --strategy /
// --threads flow through like every other scenario-driven bench.
//
//   * worst-case configuration: E[interactions] = (n-1) * C(n,2) exactly;
//     parallel time grows x4 per doubling (slope 2 in log-log)
//   * random configurations: same order, smaller constant
//   * validation: the agent array and the count engine measure the same
//     stabilization-time distribution (diff within combined CIs)
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/scenarios.h"
#include "common/cli.h"
#include "protocols/silent_nstate.h"
#include "protocols/silent_nstate_fast.h"

namespace ppsim {
namespace {

ScenarioSpec base_spec(const BenchScale& scale, std::uint32_t n,
                       const char* init, std::uint64_t seed,
                       std::uint32_t trials) {
  ScenarioSpec spec;
  spec.protocol = "silent-nstate";
  spec.init = init;
  spec.engine = "batch";
  spec.strategy = scale.strategy_name.empty() ? "auto" : scale.strategy_name;
  spec.shards = scale.shards;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  spec.threads = scale.threads;
  return spec;
}

void experiment_worst_case(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== T2.4: worst-case stabilization time (count engine via "
               "ScenarioSpec) ==\n";
  Table t({"n", "mean time", "p95 time", "mean inter.", "(n-1)C(n,2)",
           "ratio", "x vs n/2"});
  Sweep sweep;
  for (std::uint32_t n : scale.sizes({64, 128, 256, 512, 1024, 2048, 4096})) {
    const auto trials = scale.trials(n <= 1024 ? 60 : 25);
    const ScenarioResult r =
        run_scenario(base_spec(scale, n, "worst-case", 100 + n, trials));
    const double exact = silent_nstate_worst_expected_interactions(n);
    sweep.points.push_back({static_cast<double>(n), r.summary});
    t.add_row({std::to_string(n), fmt(r.summary.mean, 0),
               fmt(r.summary.p95, 0), fmt(r.interactions_mean, 0),
               fmt(exact, 0), fmt(r.interactions_mean / exact, 3),
               fmt(r.summary.mean / (n / 2.0), 2)});
    report.add()
        .set("experiment", "worst_case")
        .set("backend", r.backend)
        .set("strategy", r.strategy)
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", r.summary.mean)
        .set("interactions", r.interactions_mean)
        .set("expected_interactions", exact)
        .set("wall_seconds", r.wall_seconds);
  }
  t.print();
  if (sweep.points.size() < 2) return;
  const LinearFit f = sweep.fit();
  std::cout << "log-log fit: time ~ n^" << fmt(f.slope, 3)
            << "  (paper: Theta(n^2), exponent 2)\n";
}

void experiment_random_configs(const BenchScale& scale) {
  std::cout << "\n== T2.4: stabilization from uniformly random "
               "configurations ==\n";
  Table t({"n", "mean time", "p95 time", "worst-case mean", "random/worst"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto trials = scale.trials(60);
    const ScenarioResult random_r =
        run_scenario(base_spec(scale, n, "uniform-random", 200 + n, trials));
    const ScenarioResult worst_r =
        run_scenario(base_spec(scale, n, "worst-case", 400 + n, trials));
    t.add_row({std::to_string(n), fmt(random_r.summary.mean, 0),
               fmt(random_r.summary.p95, 0), fmt(worst_r.summary.mean, 0),
               fmt(random_r.summary.mean / worst_r.summary.mean, 3)});
  }
  t.print();
  std::cout << "random starts are Theta(n^2) as well, with a smaller "
               "constant\n";
}

void experiment_validation(const BenchScale& scale) {
  std::cout << "\n== validation: agent array vs count engine (exact "
               "distribution) ==\n";
  Table t({"n", "array mean time", "batch mean time", "diff/ci"});
  for (std::uint32_t n : scale.sizes({16, 32})) {
    const auto trials = scale.trials(200);
    ScenarioSpec array_spec =
        base_spec(scale, n, "worst-case", 500 + n, trials);
    array_spec.engine = "array";
    const ScenarioResult direct = run_scenario(array_spec);
    const ScenarioResult fast =
        run_scenario(base_spec(scale, n, "worst-case", 600 + n, trials));
    const double ci_sum = direct.summary.ci95 + fast.summary.ci95;
    t.add_row({std::to_string(n), fmt(direct.summary.mean, 1),
               fmt(fast.summary.mean, 1),
               ci_sum > 0
                   ? fmt(std::abs(direct.summary.mean - fast.summary.mean) /
                             ci_sum,
                         2)
                   : "n/a (1 trial)"});
  }
  t.print();
  std::cout << "diff/ci < ~2 indicates statistically identical means\n";
}

void BM_SilentNStateInteraction(benchmark::State& state) {
  SilentNStateSSR proto(1024);
  Rng rng(1);
  SilentNStateSSR::State a{5}, b{5};
  for (auto _ : state) {
    proto.interact(a, b, rng);
    benchmark::DoNotOptimize(b.rank);
  }
}
BENCHMARK(BM_SilentNStateInteraction);

void BM_FastSimulatorWorstCase(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SilentNStateFast(n).run(silent_nstate_worst_counts(n), seed++));
  }
}
BENCHMARK(BM_FastSimulatorWorstCase)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_silent_nstate: Protocol 1 / Theorem 2.4 "
               "(Table 1 row 1) ===\n";
  ppsim::BenchReport report("silent_nstate");
  ppsim::experiment_worst_case(scale, report);
  ppsim::experiment_random_configs(scale);
  ppsim::experiment_validation(scale);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  if (scale.micro) {
    int bench_argc = 1;
    benchmark::Initialize(&bench_argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
