// Experiment group O2.6 + the Omega(log n) SSLE bound (see DESIGN.md):
// empirical witnesses of the paper's lower bounds.
//
//   * Observation 2.6: a silent protocol must take Omega(n) expected time,
//     because duplicating the leader of a silent configuration forces the
//     two leaders to meet directly — a Geometric(2/n(n-1)) wait with mean
//     (n-1)/2 parallel time. Measured on both silent protocols.
//   * Omega(log n): from the all-leaders configuration, n-1 agents must
//     interact at least once (coupon collector) — Omega(log n) time. This
//     uses the self-stabilizing assumption that all-leaders is a valid
//     start.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/adversary.h"
#include "analysis/bench_report.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"

namespace ppsim {
namespace {

// Time until the duplicated pair first interacts (= first configuration
// change) in Silent-n-state-SSR, starting from a correct ranking with one
// agent's rank overwritten by another's.
double duplicate_meeting_time_silent_nstate(std::uint32_t n,
                                            std::uint64_t seed) {
  SilentNStateSSR proto(n);
  std::vector<SilentNStateSSR::State> init(n);
  for (std::uint32_t i = 0; i < n; ++i) init[i].rank = i;
  init[1].rank = init[0].rank;  // duplicate the "leader" (rank 0)
  Simulation<SilentNStateSSR> sim(proto, std::move(init), seed);
  while (true) {
    const AgentPair p = sim.step();
    if ((p.initiator == 0 && p.responder == 1) ||
        (p.initiator == 1 && p.responder == 0))
      return sim.parallel_time();
  }
}

// Same experiment on Optimal-Silent-SSR: duplicate the rank-1 agent of the
// silent configuration; the collision trigger fires only when they meet.
double duplicate_meeting_time_optimal(std::uint32_t n, std::uint64_t seed) {
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  auto init =
      optimal_silent_config(params, OsAdversary::kCorrectRanking, seed);
  init[1] = init[0];  // two copies of the rank-1 leader state
  Simulation<OptimalSilentSSR> sim(proto, std::move(init), seed + 1);
  while (sim.counters().collision_triggers == 0) sim.step();
  return sim.parallel_time();
}

void experiment_obs26(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== O2.6: duplicated-leader recovery needs a direct meeting "
               "==\n";
  Table t({"protocol", "n", "mean time", "(n-1)/2", "ratio", "frac >= n/3"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto trials = scale.trials(60);
    std::vector<double> a, b;
    int tail_a = 0, tail_b = 0;
    for (std::uint32_t i = 0; i < trials; ++i) {
      a.push_back(
          duplicate_meeting_time_silent_nstate(n, derive_seed(10 + n, i)));
      b.push_back(duplicate_meeting_time_optimal(n, derive_seed(20 + n, i)));
      if (a.back() >= n / 3.0) ++tail_a;
      if (b.back() >= n / 3.0) ++tail_b;
    }
    const double expect = (n - 1) / 2.0;
    t.add_row({"Silent-n-state", std::to_string(n), fmt(summarize(a).mean, 1),
               fmt(expect, 1), fmt(summarize(a).mean / expect, 3),
               fmt(static_cast<double>(tail_a) / trials, 2)});
    t.add_row({"Optimal-Silent", std::to_string(n), fmt(summarize(b).mean, 1),
               fmt(expect, 1), fmt(summarize(b).mean / expect, 3),
               fmt(static_cast<double>(tail_b) / trials, 2)});
    report.add()
        .set("experiment", "obs26_duplicate_meeting")
        .set("backend", "array")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(b).mean)
        .set("analytic_parallel_time", expect);
  }
  t.print();
  std::cout << "paper: expected time >= n/3 and P[time >= n lnn /3] >= "
               "n^{-1}/2; the mean matches the exact (n-1)/2 meeting time, "
               "certifying the Omega(n) silent lower bound\n";
}

void experiment_log_lower_bound(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== Omega(log n): from all-leaders, n-1 agents must "
               "interact ==\n";
  Table t({"n", "mean time to <= 1 untouched", "ln(n)/2", "ratio"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024, 4096})) {
    const auto trials = scale.trials(100);
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i) {
      // Count interactions until at most one agent has never interacted:
      // a lower bound on any protocol's convergence from all-leaders.
      Rng rng(derive_seed(30 + n, i));
      UniformScheduler sched(n);
      std::vector<char> touched(n, 0);
      std::uint32_t untouched = n;
      std::uint64_t steps = 0;
      while (untouched > 1) {
        const AgentPair p = sched.next(rng);
        ++steps;
        if (!touched[p.initiator]) {
          touched[p.initiator] = 1;
          --untouched;
        }
        if (!touched[p.responder]) {
          touched[p.responder] = 1;
          --untouched;
        }
      }
      xs.push_back(static_cast<double>(steps) / n);
    }
    const double expect = std::log(n) / 2.0;
    t.add_row({std::to_string(n), fmt(summarize(xs).mean, 2),
               fmt(expect, 2), fmt(summarize(xs).mean / expect, 3)});
    report.add()
        .set("experiment", "log_lower_bound")
        .set("backend", "scheduler")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(xs).mean);
  }
  t.print();
  std::cout << "paper: any SSLE protocol needs Omega(log n) time from the "
               "all-leaders configuration (coupon collector)\n";

  // And the matching protocol-level fact: Silent-n-state from all-equal
  // ranks takes at least that long to reach one agent per rank.
  std::cout << "\n== all-leaders start, Silent-n-state: time until the "
               "original rank has one holder ==\n";
  Table t2({"n", "mean time", "ln n", "mean/ln(n)"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto trials = scale.trials(40);
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i) {
      SilentNStateSSR proto(n);
      Simulation<SilentNStateSSR> sim(proto, silent_nstate_all_same(n, 0),
                                      derive_seed(40 + n, i));
      while (true) {
        sim.step();
        std::uint32_t at_zero = 0;
        for (const auto& s : sim.states())
          if (s.rank == 0) ++at_zero;
        if (at_zero <= 1) break;
      }
      xs.push_back(sim.parallel_time());
    }
    t2.add_row({std::to_string(n), fmt(summarize(xs).mean, 2),
                fmt(std::log(n), 2),
                fmt(summarize(xs).mean / std::log(n), 3)});
  }
  t2.print();
  std::cout << "in Protocol 1 the thinning needs equal-rank meetings, so it "
               "actually costs Theta(n) — well above the Omega(log n) floor "
               "that the coupon-collector argument guarantees for any "
               "protocol\n";
}

void BM_PairCoupon(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  UniformScheduler sched(n);
  for (auto _ : state) benchmark::DoNotOptimize(sched.next(rng));
}
BENCHMARK(BM_PairCoupon)->Arg(1024);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_lower_bounds: Observation 2.6 and the Omega(log n) "
               "bound ===\n";
  ppsim::BenchReport report("lower_bounds");
  ppsim::experiment_obs26(scale, report);
  ppsim::experiment_log_lower_bound(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
