// Experiment group O2.6 + the Omega(log n) SSLE bound (see DESIGN.md):
// empirical witnesses of the paper's lower bounds.
//
//   * Observation 2.6: a silent protocol must take Omega(n) expected time,
//     because duplicating the leader of a silent configuration forces the
//     two leaders to meet directly — a Geometric(2/n(n-1)) wait with mean
//     (n-1)/2 parallel time. Measured on both silent protocols.
//   * Omega(log n): from the all-leaders configuration, n-1 agents must
//     interact at least once (coupon collector) — Omega(log n) time. This
//     uses the self-stabilizing assumption that all-leaders is a valid
//     start.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "analysis/bench_report.h"
#include "analysis/experiments.h"
#include "analysis/scenarios.h"
#include "core/simulation.h"

namespace ppsim {
namespace {

// Observation 2.6 as two ScenarioSpec cells per n. Silent-n-state: the
// `duplicate-rank` start is silent except for the duplicated pair, so
// until=thinned (rank 0 back to one holder) IS the direct-meeting time —
// and the batched geometric-skip engine samples it in one jump. On
// Optimal-Silent the collision trigger (until=detected) fires only when
// the two rank-1 copies meet.
ScenarioResult obs26_cell(const BenchScale& scale, const char* protocol,
                          const char* init, const char* until,
                          std::uint32_t n, std::uint32_t trials,
                          std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.init = init;
  spec.until = until;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  spec.threads = scale.threads;
  return run_scenario(spec);
}

void experiment_obs26(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== O2.6: duplicated-leader recovery needs a direct meeting "
               "==\n";
  Table t({"protocol", "n", "mean time", "(n-1)/2", "ratio", "frac >= n/3"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const auto trials = scale.trials(60);
    const ScenarioResult a = obs26_cell(scale, "silent-nstate",
                                        "duplicate-rank", "thinned", n,
                                        trials, 10 + n);
    const ScenarioResult b = obs26_cell(scale, "optimal-silent",
                                        "duplicate-rank", "detected", n,
                                        trials, 20 + n);
    const double expect = (n - 1) / 2.0;
    auto tail_frac = [&](const ScenarioResult& r) {
      std::uint32_t tail = 0;
      for (double x : r.values)
        if (x >= n / 3.0) ++tail;
      return static_cast<double>(tail) / static_cast<double>(trials);
    };
    t.add_row({"Silent-n-state", std::to_string(n), fmt(a.summary.mean, 1),
               fmt(expect, 1), fmt(a.summary.mean / expect, 3),
               fmt(tail_frac(a), 2)});
    t.add_row({"Optimal-Silent", std::to_string(n), fmt(b.summary.mean, 1),
               fmt(expect, 1), fmt(b.summary.mean / expect, 3),
               fmt(tail_frac(b), 2)});
    report_scenario(report, "obs26_duplicate_meeting", b)
        .set("analytic_parallel_time", expect);
    report_scenario(report, "obs26_duplicate_meeting_nstate", a)
        .set("analytic_parallel_time", expect);
  }
  t.print();
  std::cout << "paper: expected time >= n/3 and P[time >= n lnn /3] >= "
               "n^{-1}/2; the mean matches the exact (n-1)/2 meeting time, "
               "certifying the Omega(n) silent lower bound\n";
}

void experiment_log_lower_bound(const BenchScale& scale, BenchReport& report) {
  std::cout << "\n== Omega(log n): from all-leaders, n-1 agents must "
               "interact ==\n";
  Table t({"n", "mean time to <= 1 untouched", "ln(n)/2", "ratio"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024, 4096})) {
    const auto trials = scale.trials(100);
    std::vector<double> xs;
    for (std::uint32_t i = 0; i < trials; ++i) {
      // Count interactions until at most one agent has never interacted:
      // a lower bound on any protocol's convergence from all-leaders.
      Rng rng(derive_seed(30 + n, i));
      UniformScheduler sched(n);
      std::vector<char> touched(n, 0);
      std::uint32_t untouched = n;
      std::uint64_t steps = 0;
      while (untouched > 1) {
        const AgentPair p = sched.next(rng);
        ++steps;
        if (!touched[p.initiator]) {
          touched[p.initiator] = 1;
          --untouched;
        }
        if (!touched[p.responder]) {
          touched[p.responder] = 1;
          --untouched;
        }
      }
      xs.push_back(static_cast<double>(steps) / n);
    }
    const double expect = std::log(n) / 2.0;
    t.add_row({std::to_string(n), fmt(summarize(xs).mean, 2),
               fmt(expect, 2), fmt(summarize(xs).mean / expect, 3)});
    report.add()
        .set("experiment", "log_lower_bound")
        .set("backend", "scheduler")
        .set("n", static_cast<std::uint64_t>(n))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("parallel_time", summarize(xs).mean);
  }
  t.print();
  std::cout << "paper: any SSLE protocol needs Omega(log n) time from the "
               "all-leaders configuration (coupon collector)\n";

  // And the matching protocol-level fact: Silent-n-state from all-equal
  // ranks takes at least that long to reach one agent per rank
  // (until=thinned from the all-same start, one ScenarioSpec per n).
  std::cout << "\n== all-leaders start, Silent-n-state: time until the "
               "original rank has one holder ==\n";
  Table t2({"n", "mean time", "ln n", "mean/ln(n)"});
  for (std::uint32_t n : scale.sizes({64, 256, 1024})) {
    const ScenarioResult r = obs26_cell(scale, "silent-nstate", "all-same",
                                        "thinned", n, scale.trials(40),
                                        40 + n);
    t2.add_row({std::to_string(n), fmt(r.summary.mean, 2),
                fmt(std::log(n), 2),
                fmt(r.summary.mean / std::log(n), 3)});
  }
  t2.print();
  std::cout << "in Protocol 1 the thinning needs equal-rank meetings, so it "
               "actually costs Theta(n) — well above the Omega(log n) floor "
               "that the coupon-collector argument guarantees for any "
               "protocol\n";
}

void BM_PairCoupon(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  UniformScheduler sched(n);
  for (auto _ : state) benchmark::DoNotOptimize(sched.next(rng));
}
BENCHMARK(BM_PairCoupon)->Arg(1024);

}  // namespace
}  // namespace ppsim

int main(int argc, char** argv) {
  const auto scale = ppsim::BenchScale::from_args(argc, argv);
  std::cout << "=== bench_lower_bounds: Observation 2.6 and the Omega(log n) "
               "bound ===\n";
  ppsim::BenchReport report("lower_bounds");
  ppsim::experiment_obs26(scale, report);
  ppsim::experiment_log_lower_bound(scale, report);
  const std::string path = report.write();
  if (!path.empty())
    std::cout << "\nmachine-readable results: " << path << "\n";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--micro") {
      int bench_argc = 1;
      benchmark::Initialize(&bench_argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      break;
    }
  }
  return 0;
}
